//! Online transition sanitizer for the logical-time invariants.
//!
//! The checker in `gtsc-sim` validates *end-of-run load values*; a
//! transition that briefly violates a timestamp invariant and
//! self-heals is invisible to it. The [`Sanitizer`] closes that gap: a
//! shared invariant state machine hooked into every GtscL1/GtscL2 (and
//! TC baseline) state transition, asserting per-transition:
//!
//! * `wts ≤ rts` on every lease a component installs or grants;
//! * per-block L2 `wts`/`rts` monotonicity within an epoch (stores
//!   strictly advance `wts`; grants never regress `rts`);
//! * every L1 lease ⊆ the high-water L2 lease granted for that block in
//!   the same epoch;
//! * per-warp `warp_ts` monotonicity (reset only at an epoch rollover);
//! * epoch-rollover ordering (epochs never move backwards, and evicted
//!   leases fold into a `mem_ts` at least as large);
//! * multi-GPU hierarchical delegation: every lease a device L2 serves
//!   on-die nests inside the inter-GPU grant it installed from the home
//!   node (`L2-lease ⊆ device-grant`, DESIGN.md §17), and a crashed
//!   device never serves from a pre-crash grant.
//!
//! Like [`crate::Tracer::record_with`], the hook costs one
//! predicted-not-taken branch when disabled and never materialises the
//! [`Transition`] payload. Enabled sanitizers share one core (the L1/L2
//! containment invariants span components), so the simulator clones one
//! root handle per component via [`Sanitizer::for_scope`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gtsc_types::{BlockAddr, Cycle, Timestamp};

use crate::Scope;

/// Cap on individually retained violation strings; the rest are counted
/// in [`Sanitizer::suppressed`] so a pathological run stays bounded.
const VIOLATION_CAP: usize = 256;

/// One protocol state transition, as reported by a component. Built
/// lazily by the [`Sanitizer::check_with`] closure — never constructed
/// when the sanitizer is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// L1 installed a logical lease `[wts, rts]` (fill or store ack).
    L1Lease {
        /// Leased block.
        block: BlockAddr,
        /// Write timestamp of the installed line.
        wts: Timestamp,
        /// Read-timestamp upper bound of the installed line.
        rts: Timestamp,
        /// Epoch the lease belongs to.
        epoch: u64,
    },
    /// L1 applied a data-less renewal extending a held lease to `rts`.
    L1Renew {
        /// Renewed block.
        block: BlockAddr,
        /// Extended read-timestamp upper bound.
        rts: Timestamp,
        /// Epoch the renewal belongs to.
        epoch: u64,
    },
    /// A warp's logical timestamp advanced to `ts`.
    WarpTs {
        /// Warp slot within the reporting SM.
        warp: u16,
        /// The new warp timestamp.
        ts: Timestamp,
    },
    /// The component entered `epoch` (Section V-D rollover reset).
    EpochEnter {
        /// The new epoch.
        epoch: u64,
    },
    /// L2 granted or extended a lease `[wts, rts]` (fill, renewal, or
    /// read-side `extend_rts`).
    L2Grant {
        /// Granted block.
        block: BlockAddr,
        /// Write timestamp of the granted version.
        wts: Timestamp,
        /// Read-timestamp upper bound granted.
        rts: Timestamp,
        /// Epoch the grant belongs to.
        epoch: u64,
    },
    /// L2 committed a store: the block's new version lives at `wts`
    /// with lease `[wts, rts]`.
    L2Store {
        /// Written block.
        block: BlockAddr,
        /// Commit write-timestamp.
        wts: Timestamp,
        /// Read-timestamp upper bound after the store.
        rts: Timestamp,
        /// Epoch the store belongs to.
        epoch: u64,
    },
    /// L2 evicted a line, folding its lease into the bank's `mem_ts`
    /// (non-inclusion, Section V-C).
    L2Evict {
        /// Evicted block.
        block: BlockAddr,
        /// The evicted line's read-timestamp upper bound.
        rts: Timestamp,
        /// The bank's `mem_ts` after folding the eviction in.
        mem_ts: Timestamp,
    },
    /// An L2 bank crashed and reset its tag array and transport state
    /// while at `epoch`. Recovery rebuilds coherence from DRAM behind a
    /// global epoch bump, so no grant or store may ever be observed at
    /// this scope in `epoch` (or older) again — logical time only moves
    /// forward across a reset, which is exactly why L1-held leases stay
    /// safe (DESIGN.md §13).
    BankReset {
        /// The epoch the bank was in when it crashed.
        epoch: u64,
    },
    /// Multi-GPU: a device L2 installed an inter-GPU grant `[wts, rts]`
    /// received from the home node (fill or write ack over the fabric).
    /// The grant is the device's delegated slice of logical time; every
    /// lease the device serves on-die must nest inside it (DESIGN.md
    /// §17).
    GrantInstall {
        /// Granted block.
        block: BlockAddr,
        /// Write timestamp of the granted version.
        wts: Timestamp,
        /// Read-timestamp upper bound of the grant.
        rts: Timestamp,
        /// Epoch the grant belongs to.
        epoch: u64,
    },
    /// Multi-GPU: a device L2 served an L1 lease `[wts, rts]` from its
    /// local tags on its own authority. Checked against the installed
    /// device grant: the `L2-lease ⊆ device-grant` invariant.
    DeviceServe {
        /// Served block.
        block: BlockAddr,
        /// Write timestamp of the served version.
        wts: Timestamp,
        /// Read-timestamp upper bound served to the L1.
        rts: Timestamp,
        /// Epoch the lease belongs to.
        epoch: u64,
    },
    /// Multi-GPU: a whole device crashed while at `epoch`, losing its
    /// installed grants and local tags. Recovery re-acquires grants from
    /// the home behind a global epoch bump, so no grant install or
    /// device serve may be observed at this scope in `epoch` (or older)
    /// again.
    DeviceCrash {
        /// The epoch the device was in when it crashed.
        epoch: u64,
    },
    /// TC baseline: a physical lease was granted, expiring at
    /// `expires`.
    TcLease {
        /// Leased block.
        block: BlockAddr,
        /// Current cycle at grant time.
        now: Cycle,
        /// Expiry cycle of the lease.
        expires: Cycle,
    },
    /// TC baseline, strong variant: a write proceeded at `now` on a
    /// line whose last granted lease expires at `expires` (write
    /// atomicity requires the lease to have run out).
    TcWrite {
        /// Written block.
        block: BlockAddr,
        /// Current cycle at write time.
        now: Cycle,
        /// Expiry cycle of the last lease on the block.
        expires: Cycle,
    },
}

#[derive(Debug, Default)]
struct SanitizerCore {
    /// High-water L2 grant per block: epoch and max granted `rts`.
    l2_rts: HashMap<BlockAddr, (u64, Timestamp)>,
    /// Last L2 `wts` observed per block (stores advance it strictly).
    l2_wts: HashMap<BlockAddr, (u64, Timestamp)>,
    /// TC: last granted expiry per block.
    tc_expires: HashMap<BlockAddr, Cycle>,
    /// Last observed warp timestamp per (SM scope, warp slot).
    warp_ts: HashMap<(Scope, u16), Timestamp>,
    /// Last observed epoch per component scope.
    epochs: HashMap<Scope, u64>,
    /// Highest epoch at which each scope crashed ([`Transition::
    /// BankReset`]): grants/stores at or below it are violations.
    crashed_at_epoch: HashMap<Scope, u64>,
    /// Live inter-GPU grant per (device scope, block): epoch and grant
    /// `rts` high-water. Device-served leases must nest inside these.
    device_grants: HashMap<(Scope, BlockAddr), (u64, Timestamp)>,
    violations: Vec<String>,
    suppressed: u64,
    checked: u64,
}

impl SanitizerCore {
    fn violate(&mut self, cycle: Cycle, scope: Scope, msg: &str) {
        if self.violations.len() < VIOLATION_CAP {
            self.violations
                .push(format!("sanitizer: [{cycle}] {scope}: {msg}"));
        } else {
            self.suppressed += 1;
        }
    }

    /// The no-lease-regression-across-a-reset rule: once a scope has
    /// reported [`Transition::BankReset`] at epoch `E`, any grant or
    /// store it performs at an epoch `<= E` would hand out logical time
    /// the pre-crash world already used — flagged as a violation.
    fn check_not_pre_crash(
        &mut self,
        cycle: Cycle,
        scope: Scope,
        what: &str,
        block: BlockAddr,
        epoch: u64,
    ) {
        if let Some(&crashed) = self.crashed_at_epoch.get(&scope) {
            if epoch <= crashed {
                let m = format!(
                    "L2 {what} on block {block} at epoch {epoch}, at or before \
                     this bank's reset epoch {crashed}: leases must not regress \
                     across a reset"
                );
                self.violate(cycle, scope, &m);
            }
        }
    }

    fn check(&mut self, cycle: Cycle, scope: Scope, t: Transition) {
        self.checked += 1;
        match t {
            Transition::L1Lease {
                block,
                wts,
                rts,
                epoch,
            } => {
                if wts > rts {
                    let m = format!(
                        "L1 lease on block {block} has wts {} > rts {}",
                        wts.0, rts.0
                    );
                    self.violate(cycle, scope, &m);
                }
                if let Some(&(e, hwm)) = self.l2_rts.get(&block) {
                    if e == epoch && rts > hwm {
                        let m = format!(
                            "L1 lease on block {block} reaches rts {} beyond any \
                             L2 grant (high-water {}) in epoch {epoch}",
                            rts.0, hwm.0
                        );
                        self.violate(cycle, scope, &m);
                    }
                }
            }
            Transition::L1Renew { block, rts, epoch } => {
                if let Some(&(e, hwm)) = self.l2_rts.get(&block) {
                    if e == epoch && rts > hwm {
                        let m = format!(
                            "L1 renewal on block {block} to rts {} beyond any \
                             L2 grant (high-water {}) in epoch {epoch}",
                            rts.0, hwm.0
                        );
                        self.violate(cycle, scope, &m);
                    }
                }
            }
            Transition::WarpTs { warp, ts } => {
                let prev = self.warp_ts.get(&(scope, warp)).copied().unwrap_or(ts);
                if ts < prev {
                    let m = format!(
                        "warp {warp} timestamp went backwards: {} -> {}",
                        prev.0, ts.0
                    );
                    self.violate(cycle, scope, &m);
                }
                self.warp_ts.insert((scope, warp), prev.max(ts));
            }
            Transition::EpochEnter { epoch } => {
                let prev = self.epochs.get(&scope).copied().unwrap_or(epoch);
                if epoch < prev {
                    let m = format!("epoch went backwards: {prev} -> {epoch}");
                    self.violate(cycle, scope, &m);
                }
                self.epochs.insert(scope, prev.max(epoch));
                // Rollover resets this component's warp timestamps to
                // INIT; forget the old frontier so the reset does not
                // read as a monotonicity violation.
                self.warp_ts.retain(|(s, _), _| *s != scope);
            }
            Transition::L2Grant {
                block,
                wts,
                rts,
                epoch,
            } => {
                if wts > rts {
                    let m = format!(
                        "L2 grant on block {block} has wts {} > rts {}",
                        wts.0, rts.0
                    );
                    self.violate(cycle, scope, &m);
                }
                self.check_not_pre_crash(cycle, scope, "grant", block, epoch);
                let hwm = self.l2_rts.get(&block).copied().unwrap_or((epoch, rts));
                if hwm.0 == epoch {
                    if rts < hwm.1 {
                        let m = format!(
                            "L2 rts regressed on block {block}: {} -> {} in epoch {epoch}",
                            hwm.1 .0, rts.0
                        );
                        self.violate(cycle, scope, &m);
                    }
                    self.l2_rts.insert(block, (epoch, hwm.1.max(rts)));
                } else if epoch > hwm.0 {
                    self.l2_rts.insert(block, (epoch, rts));
                }
                let last = self.l2_wts.get(&block).copied().unwrap_or((epoch, wts));
                if last.0 == epoch {
                    if wts < last.1 {
                        let m = format!(
                            "L2 wts regressed on block {block}: {} -> {} in epoch {epoch}",
                            last.1 .0, wts.0
                        );
                        self.violate(cycle, scope, &m);
                    }
                    self.l2_wts.insert(block, (epoch, last.1.max(wts)));
                } else if epoch > last.0 {
                    self.l2_wts.insert(block, (epoch, wts));
                }
            }
            Transition::L2Store {
                block,
                wts,
                rts,
                epoch,
            } => {
                if wts > rts {
                    let m = format!(
                        "L2 store on block {block} has wts {} > rts {}",
                        wts.0, rts.0
                    );
                    self.violate(cycle, scope, &m);
                }
                self.check_not_pre_crash(cycle, scope, "store", block, epoch);
                if let Some(&(e, last)) = self.l2_wts.get(&block) {
                    if e == epoch && wts <= last {
                        let m = format!(
                            "store wts not strictly monotone on block {block}: \
                             {} after {} in epoch {epoch}",
                            wts.0, last.0
                        );
                        self.violate(cycle, scope, &m);
                    }
                }
                self.l2_wts.insert(block, (epoch, wts));
                let hwm = self.l2_rts.entry(block).or_insert((epoch, rts));
                if hwm.0 == epoch {
                    hwm.1 = hwm.1.max(rts);
                } else if epoch > hwm.0 {
                    *hwm = (epoch, rts);
                }
            }
            Transition::L2Evict { block, rts, mem_ts } => {
                if mem_ts < rts {
                    let m = format!(
                        "eviction of block {block} folded rts {} into a smaller \
                         mem_ts {}",
                        rts.0, mem_ts.0
                    );
                    self.violate(cycle, scope, &m);
                }
            }
            Transition::BankReset { epoch } => {
                let prev = self.crashed_at_epoch.get(&scope).copied().unwrap_or(0);
                self.crashed_at_epoch.insert(scope, prev.max(epoch));
            }
            Transition::GrantInstall {
                block,
                wts,
                rts,
                epoch,
            } => {
                if wts > rts {
                    let m = format!(
                        "device grant on block {block} has wts {} > rts {}",
                        wts.0, rts.0
                    );
                    self.violate(cycle, scope, &m);
                }
                self.check_not_pre_crash(cycle, scope, "grant install", block, epoch);
                // A device grant is itself a lease the home handed down:
                // it must nest inside the home's high-water grant.
                if let Some(&(e, hwm)) = self.l2_rts.get(&block) {
                    if e == epoch && rts > hwm {
                        let m = format!(
                            "device grant on block {block} reaches rts {} beyond \
                             any home grant (high-water {}) in epoch {epoch}",
                            rts.0, hwm.0
                        );
                        self.violate(cycle, scope, &m);
                    }
                }
                let g = self
                    .device_grants
                    .entry((scope, block))
                    .or_insert((epoch, rts));
                if g.0 == epoch {
                    g.1 = g.1.max(rts);
                } else if epoch > g.0 {
                    *g = (epoch, rts);
                }
            }
            Transition::DeviceServe {
                block,
                wts,
                rts,
                epoch,
            } => {
                if wts > rts {
                    let m = format!(
                        "device-served lease on block {block} has wts {} > rts {}",
                        wts.0, rts.0
                    );
                    self.violate(cycle, scope, &m);
                }
                self.check_not_pre_crash(cycle, scope, "serve", block, epoch);
                match self.device_grants.get(&(scope, block)) {
                    Some(&(e, grant_rts)) if e == epoch => {
                        if rts > grant_rts {
                            let m = format!(
                                "L2-lease ⊄ device-grant: lease on block {block} \
                                 reaches rts {} beyond the installed grant's rts \
                                 {} in epoch {epoch}",
                                rts.0, grant_rts.0
                            );
                            self.violate(cycle, scope, &m);
                        }
                    }
                    _ => {
                        let m = format!(
                            "L2-lease ⊄ device-grant: lease on block {block} \
                             served with no live device grant in epoch {epoch}"
                        );
                        self.violate(cycle, scope, &m);
                    }
                }
            }
            Transition::DeviceCrash { epoch } => {
                let prev = self.crashed_at_epoch.get(&scope).copied().unwrap_or(0);
                self.crashed_at_epoch.insert(scope, prev.max(epoch));
                // The crash loses every grant the device held; serving
                // from a pre-crash grant after recovery must be flagged.
                self.device_grants.retain(|(s, _), _| *s != scope);
            }
            Transition::TcLease {
                block,
                now,
                expires,
            } => {
                if expires < now {
                    let m = format!(
                        "TC lease on block {block} granted already expired \
                         ({expires} < {now})"
                    );
                    self.violate(cycle, scope, &m);
                }
                self.tc_expires.insert(block, expires);
            }
            Transition::TcWrite {
                block,
                now,
                expires,
            } => {
                if now < expires {
                    let m = format!(
                        "TC strong write on block {block} at {now} before its \
                         lease expires at {expires}"
                    );
                    self.violate(cycle, scope, &m);
                }
            }
        }
    }
}

/// One component's handle on the shared invariant state machine.
///
/// The default sanitizer is disabled and checks nothing; the simulator
/// creates one enabled root per run and installs per-component clones
/// (sharing the core) when `GpuConfig::sanitize` is set.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    shared: Option<Rc<RefCell<SanitizerCore>>>,
    scope: Scope,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer::disabled()
    }
}

impl Sanitizer {
    /// A sanitizer that checks nothing (the hot-path default).
    #[must_use]
    pub fn disabled() -> Self {
        Sanitizer {
            shared: None,
            scope: Scope::Sm(0),
        }
    }

    /// A fresh enabled sanitizer rooted at `scope`.
    #[must_use]
    pub fn enabled(scope: Scope) -> Self {
        Sanitizer {
            shared: Some(Rc::new(RefCell::new(SanitizerCore::default()))),
            scope,
        }
    }

    /// A handle on the same shared core, reporting as `scope`.
    #[must_use]
    pub fn for_scope(&self, scope: Scope) -> Self {
        Sanitizer {
            shared: self.shared.clone(),
            scope,
        }
    }

    /// Whether any checking is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The component this handle reports as ([`Scope::Sm`]`(0)` when
    /// disabled).
    #[must_use]
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// Checks the transition built by `t`, which only runs when the
    /// sanitizer is enabled. This is the per-transition hot-path hook:
    /// a disabled sanitizer pays one predicted-not-taken branch and
    /// never materialises the payload (the `sanitize_overhead` benches
    /// in `gtsc-bench` hold the protocol fast paths to the same <2%
    /// budget as tracing).
    #[inline]
    pub fn check_with(&self, cycle: Cycle, t: impl FnOnce() -> Transition) {
        if self.shared.is_none() {
            return;
        }
        self.check_slow(cycle, t());
    }

    /// The checking path, kept out of line (and cold) so the disabled
    /// fast path stays a bare branch.
    #[cold]
    #[inline(never)]
    fn check_slow(&self, cycle: Cycle, t: Transition) {
        if let Some(shared) = self.shared.as_ref() {
            shared.borrow_mut().check(cycle, self.scope, t);
        }
    }

    /// Violations recorded so far (capped; see
    /// [`Sanitizer::suppressed`]).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        self.shared
            .as_ref()
            .map_or_else(Vec::new, |s| s.borrow().violations.clone())
    }

    /// Number of transitions checked.
    #[must_use]
    pub fn checked(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.borrow().checked)
    }

    /// Violations beyond the retention cap (counted, not formatted).
    #[must_use]
    pub fn suppressed(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.borrow().suppressed)
    }

    /// Serializes the shared invariant core (checkpointing). Saving
    /// through any handle captures the state seen by every scoped clone,
    /// since they all share one core.
    pub fn save_state(&self, w: &mut gtsc_types::snap::SnapWriter) {
        match self.shared.as_ref() {
            Some(s) => {
                w.bool(true);
                gtsc_types::snap::Snap::save(&*s.borrow(), w);
            }
            None => w.bool(false),
        }
    }

    /// Restores the shared core in place; every scoped clone observes the
    /// restored state. The target's enablement (decided by config at
    /// build time) must match the snapshot's.
    ///
    /// # Errors
    ///
    /// [`gtsc_types::snap::SnapshotError::Mismatch`] when one side is
    /// enabled and the other is not, or any decode error from a damaged
    /// payload.
    pub fn load_state(
        &mut self,
        r: &mut gtsc_types::snap::SnapReader<'_>,
    ) -> Result<(), gtsc_types::snap::SnapshotError> {
        let enabled = r.bool()?;
        match (enabled, self.shared.as_ref()) {
            (true, Some(s)) => {
                *s.borrow_mut() = gtsc_types::snap::Snap::load(r)?;
                Ok(())
            }
            (false, None) => Ok(()),
            _ => Err(gtsc_types::snap::SnapshotError::Mismatch {
                what: "sanitizer enablement".into(),
            }),
        }
    }
}

gtsc_types::snap_fields!(SanitizerCore {
    l2_rts,
    l2_wts,
    tc_expires,
    warp_ts,
    epochs,
    crashed_at_epoch,
    device_grants,
    violations,
    suppressed,
    checked,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn disabled_sanitizer_checks_nothing() {
        let s = Sanitizer::disabled();
        assert!(!s.is_enabled());
        s.check_with(Cycle(0), || Transition::WarpTs {
            warp: 0,
            ts: Timestamp(5),
        });
        assert_eq!(s.checked(), 0);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn disabled_check_with_never_builds_the_payload() {
        let s = Sanitizer::disabled();
        s.check_with(Cycle(0), || unreachable!("payload built while disabled"));
    }

    #[test]
    fn clean_lease_flow_passes() {
        let root = Sanitizer::enabled(Scope::Sm(0));
        let l2 = root.for_scope(Scope::L2Bank(0));
        let l1 = root.for_scope(Scope::Sm(1));
        l2.check_with(Cycle(1), || Transition::L2Grant {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(11),
            epoch: 0,
        });
        l1.check_with(Cycle(2), || Transition::L1Lease {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(11),
            epoch: 0,
        });
        l1.check_with(Cycle(3), || Transition::WarpTs {
            warp: 0,
            ts: Timestamp(5),
        });
        l1.check_with(Cycle(4), || Transition::WarpTs {
            warp: 0,
            ts: Timestamp(9),
        });
        assert_eq!(root.checked(), 4);
        assert!(root.violations().is_empty(), "{:?}", root.violations());
    }

    #[test]
    fn wts_above_rts_is_flagged() {
        let s = Sanitizer::enabled(Scope::L2Bank(0));
        s.check_with(Cycle(1), || Transition::L2Grant {
            block: b(1),
            wts: Timestamp(12),
            rts: Timestamp(4),
            epoch: 0,
        });
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("wts 12 > rts 4"), "{v:?}");
    }

    #[test]
    fn l1_lease_outside_l2_grant_is_flagged() {
        let root = Sanitizer::enabled(Scope::Sm(0));
        let l2 = root.for_scope(Scope::L2Bank(0));
        l2.check_with(Cycle(1), || Transition::L2Grant {
            block: b(2),
            wts: Timestamp(1),
            rts: Timestamp(10),
            epoch: 0,
        });
        root.check_with(Cycle(2), || Transition::L1Lease {
            block: b(2),
            wts: Timestamp(1),
            rts: Timestamp(20),
            epoch: 0,
        });
        let v = root.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("beyond any L2 grant"), "{v:?}");
    }

    #[test]
    fn warp_ts_regression_is_flagged_but_rollover_reset_is_not() {
        let s = Sanitizer::enabled(Scope::Sm(0));
        s.check_with(Cycle(1), || Transition::WarpTs {
            warp: 2,
            ts: Timestamp(9),
        });
        s.check_with(Cycle(2), || Transition::WarpTs {
            warp: 2,
            ts: Timestamp(4),
        });
        assert_eq!(s.violations().len(), 1);
        // Epoch entry clears the frontier: the post-reset INIT value is
        // not a regression.
        s.check_with(Cycle(3), || Transition::EpochEnter { epoch: 1 });
        s.check_with(Cycle(4), || Transition::WarpTs {
            warp: 2,
            ts: Timestamp(1),
        });
        assert_eq!(s.violations().len(), 1, "{:?}", s.violations());
    }

    #[test]
    fn store_wts_must_strictly_advance_within_epoch() {
        let s = Sanitizer::enabled(Scope::L2Bank(0));
        let store = |wts: u64, epoch: u64| Transition::L2Store {
            block: b(7),
            wts: Timestamp(wts),
            rts: Timestamp(wts + 10),
            epoch,
        };
        s.check_with(Cycle(1), || store(5, 0));
        s.check_with(Cycle(2), || store(5, 0));
        assert_eq!(s.violations().len(), 1);
        assert!(s.violations()[0].contains("not strictly monotone"));
        // A new epoch restarts the ladder.
        s.check_with(Cycle(3), || store(2, 1));
        assert_eq!(s.violations().len(), 1, "{:?}", s.violations());
    }

    #[test]
    fn epoch_regression_and_evict_folding_are_flagged() {
        let s = Sanitizer::enabled(Scope::L2Bank(1));
        s.check_with(Cycle(1), || Transition::EpochEnter { epoch: 3 });
        s.check_with(Cycle(2), || Transition::EpochEnter { epoch: 2 });
        assert_eq!(s.violations().len(), 1);
        s.check_with(Cycle(3), || Transition::L2Evict {
            block: b(9),
            rts: Timestamp(40),
            mem_ts: Timestamp(12),
        });
        assert_eq!(s.violations().len(), 2);
        assert!(s.violations()[1].contains("smaller mem_ts"));
    }

    #[test]
    fn grants_must_not_regress_across_a_bank_reset() {
        let root = Sanitizer::enabled(Scope::Sm(0));
        let bank = root.for_scope(Scope::L2Bank(2));
        let other = root.for_scope(Scope::L2Bank(3));
        bank.check_with(Cycle(1), || Transition::L2Grant {
            block: b(4),
            wts: Timestamp(1),
            rts: Timestamp(9),
            epoch: 0,
        });
        bank.check_with(Cycle(5), || Transition::BankReset { epoch: 0 });
        bank.check_with(Cycle(6), || Transition::EpochEnter { epoch: 1 });
        // Post-recovery grants in the bumped epoch are fine.
        bank.check_with(Cycle(7), || Transition::L2Grant {
            block: b(4),
            wts: Timestamp(0),
            rts: Timestamp(5),
            epoch: 1,
        });
        assert!(root.violations().is_empty(), "{:?}", root.violations());
        // A grant or store at the crash epoch (or older) regresses.
        bank.check_with(Cycle(8), || Transition::L2Grant {
            block: b(4),
            wts: Timestamp(1),
            rts: Timestamp(9),
            epoch: 0,
        });
        bank.check_with(Cycle(9), || Transition::L2Store {
            block: b(5),
            wts: Timestamp(3),
            rts: Timestamp(9),
            epoch: 0,
        });
        let v = root.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("must not regress across a reset"), "{v:?}");
        // Scopes that never crashed are unaffected.
        other.check_with(Cycle(10), || Transition::L2Grant {
            block: b(6),
            wts: Timestamp(1),
            rts: Timestamp(9),
            epoch: 0,
        });
        assert_eq!(root.violations().len(), 2);
    }

    #[test]
    fn device_served_lease_must_nest_inside_grant() {
        let root = Sanitizer::enabled(Scope::Home(0));
        let dev = root.for_scope(Scope::Device(0));
        let other = root.for_scope(Scope::Device(1));
        // Home grants [1, 50] to device 0.
        root.check_with(Cycle(1), || Transition::L2Grant {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(50),
            epoch: 0,
        });
        dev.check_with(Cycle(2), || Transition::GrantInstall {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(50),
            epoch: 0,
        });
        // Serving inside the grant is fine; at the edge is fine.
        dev.check_with(Cycle(3), || Transition::DeviceServe {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(30),
            epoch: 0,
        });
        dev.check_with(Cycle(4), || Transition::DeviceServe {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(50),
            epoch: 0,
        });
        assert!(root.violations().is_empty(), "{:?}", root.violations());
        // Past the grant: the serve-past-grant-rts bug.
        dev.check_with(Cycle(5), || Transition::DeviceServe {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(51),
            epoch: 0,
        });
        let v = root.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("L2-lease ⊄ device-grant"), "{v:?}");
        // A different device holds no grant for the block at all.
        other.check_with(Cycle(6), || Transition::DeviceServe {
            block: b(3),
            wts: Timestamp(1),
            rts: Timestamp(10),
            epoch: 0,
        });
        let v = root.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[1].contains("no live device grant"), "{v:?}");
    }

    #[test]
    fn device_grant_beyond_home_grant_is_flagged() {
        let root = Sanitizer::enabled(Scope::Home(0));
        let dev = root.for_scope(Scope::Device(0));
        root.check_with(Cycle(1), || Transition::L2Grant {
            block: b(8),
            wts: Timestamp(1),
            rts: Timestamp(20),
            epoch: 0,
        });
        dev.check_with(Cycle(2), || Transition::GrantInstall {
            block: b(8),
            wts: Timestamp(1),
            rts: Timestamp(25),
            epoch: 0,
        });
        let v = root.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("beyond any home grant"), "{v:?}");
    }

    #[test]
    fn device_crash_wipes_grants_and_blocks_pre_crash_serves() {
        let root = Sanitizer::enabled(Scope::Home(0));
        let dev = root.for_scope(Scope::Device(2));
        dev.check_with(Cycle(1), || Transition::GrantInstall {
            block: b(4),
            wts: Timestamp(1),
            rts: Timestamp(40),
            epoch: 0,
        });
        dev.check_with(Cycle(2), || Transition::DeviceCrash { epoch: 0 });
        // Serving from the (lost) grant after the crash: two findings —
        // the serve is pre-crash-epoch AND the grant is gone.
        dev.check_with(Cycle(3), || Transition::DeviceServe {
            block: b(4),
            wts: Timestamp(1),
            rts: Timestamp(30),
            epoch: 0,
        });
        let v = root.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("must not regress across a reset"), "{v:?}");
        assert!(v[1].contains("no live device grant"), "{v:?}");
        // Recovery: fresh grant in the bumped epoch serves cleanly.
        dev.check_with(Cycle(4), || Transition::GrantInstall {
            block: b(4),
            wts: Timestamp(0),
            rts: Timestamp(8),
            epoch: 1,
        });
        dev.check_with(Cycle(5), || Transition::DeviceServe {
            block: b(4),
            wts: Timestamp(0),
            rts: Timestamp(8),
            epoch: 1,
        });
        assert_eq!(root.violations().len(), 2, "{:?}", root.violations());
    }

    #[test]
    fn tc_strong_write_inside_lease_is_flagged() {
        let s = Sanitizer::enabled(Scope::L2Bank(0));
        s.check_with(Cycle(5), || Transition::TcLease {
            block: b(1),
            now: Cycle(5),
            expires: Cycle(100),
        });
        s.check_with(Cycle(50), || Transition::TcWrite {
            block: b(1),
            now: Cycle(50),
            expires: Cycle(100),
        });
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("before its lease expires"), "{v:?}");
    }

    #[test]
    fn violation_cap_counts_suppressed() {
        let s = Sanitizer::enabled(Scope::Sm(0));
        for i in 0..(VIOLATION_CAP as u64 + 10) {
            s.check_with(Cycle(i), || Transition::L2Evict {
                block: b(i),
                rts: Timestamp(10),
                mem_ts: Timestamp(0),
            });
        }
        assert_eq!(s.violations().len(), VIOLATION_CAP);
        assert_eq!(s.suppressed(), 10);
    }
}
