//! The flight recorder: a bounded ring buffer of recent events.
//!
//! Every traced component owns one; when a run wedges or the checker
//! fires, the rings are merged into the post-mortem so the last N
//! protocol transitions around the failure are visible without paying
//! for a full event log.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// A bounded ring of the most recent events: pushing beyond capacity
/// evicts the oldest entry, preserving order.
///
/// # Examples
///
/// ```
/// use gtsc_trace::{EventKind, FlightRecorder, Scope, TraceEvent};
/// use gtsc_types::Cycle;
///
/// let mut r = FlightRecorder::new(2);
/// for c in 0..5 {
///     r.push(TraceEvent {
///         cycle: Cycle(c),
///         scope: Scope::Sm(0),
///         kind: EventKind::WarpIssue { warp: 0 },
///     });
/// }
/// let tail: Vec<u64> = r.tail().iter().map(|e| e.cycle.0).collect();
/// assert_eq!(tail, vec![3, 4]); // oldest evicted, order preserved
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` events. A zero
    /// capacity records nothing.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn tail(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all retained events (kernel boundaries).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Scope};
    use gtsc_types::Cycle;
    use proptest::prelude::*;

    fn ev(c: u64) -> TraceEvent {
        TraceEvent {
            cycle: Cycle(c),
            scope: Scope::Sm(0),
            kind: EventKind::WarpIssue {
                warp: (c % 7) as u16,
            },
        }
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = FlightRecorder::new(8);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 5);
        let cycles: Vec<u64> = r.tail().iter().map(|e| e.cycle.0).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_evicts_oldest_preserving_order() {
        let mut r = FlightRecorder::new(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        let cycles: Vec<u64> = r.tail().iter().map(|e| e.cycle.0).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = FlightRecorder::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.tail(), vec![]);
    }

    #[test]
    fn clear_empties_the_ring() {
        let mut r = FlightRecorder::new(4);
        r.push(ev(1));
        r.clear();
        assert!(r.is_empty());
        r.push(ev(2));
        assert_eq!(r.len(), 1);
    }

    proptest! {
        /// For any capacity and push count, the ring holds exactly the
        /// last `min(pushes, capacity)` events in push order.
        #[test]
        fn ring_is_always_the_ordered_suffix(cap in 0usize..32, pushes in 0u64..200) {
            let mut r = FlightRecorder::new(cap);
            for c in 0..pushes {
                r.push(ev(c));
            }
            let got: Vec<u64> = r.tail().iter().map(|e| e.cycle.0).collect();
            let keep = (pushes as usize).min(cap);
            let want: Vec<u64> = (pushes - keep as u64..pushes).collect();
            prop_assert_eq!(got, want);
        }
    }
}
