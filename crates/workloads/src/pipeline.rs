//! DLP — a cross-CTA producer/consumer pipeline (group A).
//!
//! CTA *i* produces a tile of blocks, fences, publishes a flag, then
//! consumes the tile produced by CTA *i − 1* (checking its flag first).
//! This is the classic inter-SM message-passing pattern: without
//! coherence the consumer can read a stale tile even after seeing the
//! flag.

use gtsc_gpu::{VecKernel, WarpOp};
use gtsc_types::Addr;
use rand::Rng;

use crate::layout::{assemble, Region, Scale};

/// Builds the DLP kernel.
#[must_use]
pub fn producer_consumer(scale: Scale, seed: u64) -> VecKernel {
    let n_ctas = scale.ctas() as u64;
    let tile_blocks = 6u64;
    let tiles = Region::new(Addr(0), n_ctas * tile_blocks * 2);
    let flags = Region::new(tiles.end(), n_ctas * 2);
    assemble("DLP", scale, seed, move |cta, w, rng| {
        let mut ops = Vec::new();
        for round in 0..scale.iters() as u64 {
            let my_tile = cta + round * n_ctas;
            let prev_tile = (cta + n_ctas - 1) % n_ctas + round * n_ctas;
            // Produce my tile slice (warps split the tile).
            let blk = my_tile * tile_blocks + (w % tile_blocks);
            ops.push(WarpOp::Compute(4 + rng.gen_range(0..4)));
            ops.push(WarpOp::store_coalesced(tiles.block(blk), 32));
            ops.push(WarpOp::Fence);
            // Publish the flag (warp 0 of the CTA).
            if w == 0 {
                ops.push(WarpOp::store_coalesced(flags.block(my_tile), 32));
                ops.push(WarpOp::Fence);
            }
            ops.push(WarpOp::Barrier);
            // Consume the neighbour's tile: flag first, then data.
            ops.push(WarpOp::load_coalesced(flags.block(prev_tile), 32));
            ops.push(WarpOp::Fence);
            for b in 0..2 {
                ops.push(WarpOp::load_coalesced(
                    tiles.block(prev_tile * tile_blocks + (w + b) % tile_blocks),
                    32,
                ));
            }
            ops.push(WarpOp::Compute(3));
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::Kernel;
    use gtsc_types::CtaId;

    #[test]
    fn producer_and_consumer_overlap_across_ctas() {
        let k = producer_consumer(Scale::Tiny, 3);
        let stores = |cta: u32| -> std::collections::HashSet<u64> {
            k.program(CtaId(cta), 0)
                .0
                .iter()
                .filter_map(|op| match op {
                    WarpOp::Store(a) => Some(a[0].0 / 128),
                    _ => None,
                })
                .collect()
        };
        let loads = |cta: u32| -> std::collections::HashSet<u64> {
            k.program(CtaId(cta), 0)
                .0
                .iter()
                .filter_map(|op| match op {
                    WarpOp::Load(a) => Some(a[0].0 / 128),
                    _ => None,
                })
                .collect()
        };
        // CTA 1 reads what CTA 0 writes.
        assert!(
            !stores(0).is_disjoint(&loads(1)),
            "cross-CTA RW sharing expected"
        );
    }

    #[test]
    fn flags_are_fenced_before_and_after() {
        let k = producer_consumer(Scale::Tiny, 3);
        let p = k.program(CtaId(0), 0);
        // Every store is eventually followed by a fence before the barrier.
        let mut saw_store = false;
        let mut fenced = false;
        for op in &p.0 {
            match op {
                WarpOp::Store(_) => {
                    saw_store = true;
                    fenced = false;
                }
                WarpOp::Fence => fenced = true,
                WarpOp::Barrier => {
                    assert!(
                        !saw_store || fenced,
                        "stores must be fenced before the barrier"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn has_barriers_each_round() {
        let k = producer_consumer(Scale::Tiny, 3);
        let p = k.program(CtaId(0), 1);
        let barriers =
            p.0.iter()
                .filter(|op| matches!(op, WarpOp::Barrier))
                .count();
        assert_eq!(barriers, Scale::Tiny.iters());
    }
}
