//! Address-space layout helpers, workload scales, and the generator
//! assembly harness.

use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_types::Addr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a [`VecKernel`] by invoking `gen(cta, warp, rng)` for every warp
/// with a deterministic per-warp RNG derived from `seed`.
pub fn assemble(
    name: &str,
    scale: Scale,
    seed: u64,
    mut gen: impl FnMut(u64, u64, &mut StdRng) -> Vec<WarpOp>,
) -> VecKernel {
    let ctas = (0..scale.ctas() as u64)
        .map(|cta| {
            (0..scale.warps_per_cta() as u64)
                .map(|w| {
                    let mut rng = StdRng::seed_from_u64(
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (cta << 20) ^ w,
                    );
                    WarpProgram(gen(cta, w, &mut rng))
                })
                .collect()
        })
        .collect();
    VecKernel::new(name, scale.warps_per_cta(), ctas)
}

/// Cache-block size assumed by the generators (matches the paper's 128 B
/// lines; the simulator coalesces at its own configured size, so this is
/// only a layout granularity).
pub const BLOCK: u64 = 128;

/// How big a benchmark instance to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// 2 CTAs × 2 warps, a handful of iterations — unit tests.
    Tiny,
    /// 8 CTAs × 4 warps — integration tests and quick benches.
    Small,
    /// 48 CTAs × 8 warps — the figure/table experiments (three dispatch
    /// waves on the paper's 16-SM GPU).
    Full,
    /// A fully custom instance (e.g. to stretch runs for lease-regime
    /// studies, or to match a different GPU configuration).
    Custom {
        /// CTAs in the grid.
        ctas: usize,
        /// Warps per CTA.
        warps_per_cta: usize,
        /// Outer iterations per warp.
        iters: usize,
        /// Size multiplier for shared data structures.
        data_factor: u64,
    },
}

impl Scale {
    /// CTAs in the grid.
    #[must_use]
    pub fn ctas(self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 8,
            Scale::Full => 48,
            Scale::Custom { ctas, .. } => ctas,
        }
    }

    /// Warps per CTA.
    #[must_use]
    pub fn warps_per_cta(self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 4,
            Scale::Full => 8,
            Scale::Custom { warps_per_cta, .. } => warps_per_cta,
        }
    }

    /// Outer iterations each warp performs.
    #[must_use]
    pub fn iters(self) -> usize {
        match self {
            Scale::Tiny => 4,
            Scale::Small => 10,
            Scale::Full => 24,
            Scale::Custom { iters, .. } => iters,
        }
    }

    /// Size multiplier for shared data structures.
    #[must_use]
    pub fn data_factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Full => 16,
            Scale::Custom { data_factor, .. } => data_factor,
        }
    }
}

/// Picks a block index with hot-set skew: with probability `p_hot` the
/// index falls in the first `hot` blocks of the region (the hot working
/// set real irregular applications exhibit), otherwise anywhere.
///
/// Skew is what gives graph-style workloads their L1 reuse — and what
/// exposes the protocol differences: hot shared blocks keep live leases,
/// so TC writes stall on them while G-TSC reschedules logically.
pub fn skewed_index(rng: &mut impl rand::Rng, region: &Region, hot: u64, p_hot: f64) -> u64 {
    if rng.gen_bool(p_hot) {
        rng.gen_range(0..hot.min(region.len()))
    } else {
        rng.gen_range(0..region.len())
    }
}

/// A contiguous, block-aligned memory region.
///
/// # Examples
///
/// ```
/// use gtsc_workloads::Region;
/// use gtsc_types::Addr;
///
/// let r = Region::new(Addr(0x1000), 8);
/// assert_eq!(r.block(0), Addr(0x1000));
/// assert_eq!(r.block(9), Addr(0x1000 + 128)); // wraps modulo length
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    n_blocks: u64,
}

impl Region {
    /// A region of `n_blocks` cache blocks starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero.
    #[must_use]
    pub fn new(base: Addr, n_blocks: u64) -> Self {
        assert!(n_blocks > 0, "region must have at least one block");
        Region { base, n_blocks }
    }

    /// Number of blocks in the region.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n_blocks
    }

    /// Whether the region is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Address of block `i` (wrapping modulo the region length, so
    /// generators can index freely).
    #[must_use]
    pub fn block(&self, i: u64) -> Addr {
        self.base.offset((i % self.n_blocks) * BLOCK)
    }

    /// The first address past the region (for stacking regions).
    #[must_use]
    pub fn end(&self) -> Addr {
        self.base.offset(self.n_blocks * BLOCK)
    }

    /// Splits off a per-entity subregion: entity `i` of `n` gets an equal
    /// slice (at least one block).
    #[must_use]
    pub fn slice(&self, i: u64, n: u64) -> Region {
        let per = (self.n_blocks / n.max(1)).max(1);
        Region {
            base: self.base.offset((i % n.max(1)) * per * BLOCK),
            n_blocks: per,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_block_aligned_and_wrap() {
        let r = Region::new(Addr(0), 4);
        assert_eq!(r.block(3), Addr(3 * 128));
        assert_eq!(r.block(4), Addr(0));
        assert_eq!(r.end(), Addr(512));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn slices_partition() {
        let r = Region::new(Addr(0), 8);
        let a = r.slice(0, 4);
        let b = r.slice(1, 4);
        assert_eq!(a.len(), 2);
        assert_eq!(a.end(), b.block(0));
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.ctas() < Scale::Small.ctas());
        assert!(Scale::Small.ctas() < Scale::Full.ctas());
        assert!(Scale::Tiny.iters() < Scale::Full.iters());
    }

    #[test]
    fn custom_scale_passes_through() {
        let s = Scale::Custom {
            ctas: 5,
            warps_per_cta: 3,
            iters: 77,
            data_factor: 9,
        };
        assert_eq!(s.ctas(), 5);
        assert_eq!(s.warps_per_cta(), 3);
        assert_eq!(s.iters(), 77);
        assert_eq!(s.data_factor(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_region_rejected() {
        let _ = Region::new(Addr(0), 0);
    }
}
