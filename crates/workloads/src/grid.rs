//! Grid workloads: VPR — randomized swaps on a shared cost grid and
//! STN — a stencil whose halo rows are written by neighbouring CTAs
//! (both group A), plus HS — the hotspot stencil on CTA-private tiles
//! (group B).

use gtsc_gpu::{VecKernel, WarpOp};
use gtsc_types::Addr;
use rand::Rng;

use crate::layout::{assemble, skewed_index, Region, Scale};

/// Builds the VPR (place & route) kernel: simulated-annealing-style swap
/// proposals touching random cells of a shared placement grid.
#[must_use]
pub fn place_route(scale: Scale, seed: u64) -> VecKernel {
    let grid = Region::new(Addr(0), 128 * scale.data_factor());
    assemble("VPR", scale, seed, |_cta, _w, rng| {
        let mut ops = Vec::new();
        for i in 0..scale.iters() {
            // Congested placement regions are evaluated far more often
            // than they are modified: skewed reads, rare commits.
            let a = skewed_index(rng, &grid, 16, 0.6);
            let b = skewed_index(rng, &grid, 16, 0.4);
            // Evaluate the swap: read both cells and their neighbourhoods.
            ops.push(WarpOp::load_coalesced(grid.block(a), 32));
            ops.push(WarpOp::load_coalesced(grid.block(b), 32));
            ops.push(WarpOp::load_coalesced(grid.block(a + 1), 32));
            ops.push(WarpOp::load_coalesced(grid.block(b + 1), 32));
            ops.push(WarpOp::Compute(8));
            ops.push(WarpOp::load_coalesced(grid.block(a), 32));
            // Commit the swap with some probability; most accepted swaps
            // move cells *out of* congested regions (cold destinations).
            if rng.gen_bool(0.25) {
                let dst = rng.gen_range(0..grid.len());
                ops.push(WarpOp::store_coalesced(grid.block(dst), 32));
                ops.push(WarpOp::store_coalesced(grid.block(b), 32));
            }
            if i % 2 == 1 {
                ops.push(WarpOp::Fence);
            }
        }
        ops
    })
}

/// Builds the STN kernel: an iterative stencil where each CTA writes its
/// own rows and reads halo rows owned by the *neighbouring* CTAs — the
/// cross-CTA sharing that distinguishes it from HS.
#[must_use]
pub fn shared_stencil(scale: Scale, seed: u64) -> VecKernel {
    let n_ctas = scale.ctas() as u64;
    let row_blocks = 4u64;
    let grid = Region::new(Addr(0), n_ctas * row_blocks);
    assemble("STN", scale, seed, move |cta, w, rng| {
        let mut ops = Vec::new();
        let my_row = cta;
        let up = (cta + n_ctas - 1) % n_ctas;
        let down = (cta + 1) % n_ctas;
        for _iter in 0..scale.iters() {
            let col = w % row_blocks;
            // Read own row and both halo rows (owned and written by the
            // neighbour CTAs).
            ops.push(WarpOp::load_coalesced(
                grid.block(my_row * row_blocks + col),
                32,
            ));
            ops.push(WarpOp::load_coalesced(
                grid.block(up * row_blocks + col),
                32,
            ));
            ops.push(WarpOp::load_coalesced(
                grid.block(down * row_blocks + col),
                32,
            ));
            ops.push(WarpOp::Compute(5 + rng.gen_range(0..3)));
            // Write own row, publish, synchronize the sweep.
            ops.push(WarpOp::store_coalesced(
                grid.block(my_row * row_blocks + col),
                32,
            ));
            ops.push(WarpOp::Fence);
            ops.push(WarpOp::Barrier);
        }
        ops
    })
}

/// Builds the HS (hotspot) kernel: the same stencil shape but on
/// CTA-private tiles — no inter-CTA sharing, hence no need for coherence.
#[must_use]
pub fn private_stencil(scale: Scale, seed: u64) -> VecKernel {
    let n_ctas = scale.ctas() as u64;
    let tile_blocks = 8u64;
    let grid = Region::new(Addr(0), n_ctas * tile_blocks);
    assemble("HS", scale, seed, move |cta, w, rng| {
        let tile = grid.slice(cta, n_ctas);
        let mut ops = Vec::new();
        for iter in 0..scale.iters() as u64 {
            let col = (w + iter) % tile.len();
            ops.push(WarpOp::load_coalesced(tile.block(col), 32));
            ops.push(WarpOp::load_coalesced(tile.block(col + 1), 32));
            ops.push(WarpOp::Compute(10 + rng.gen_range(0..6)));
            ops.push(WarpOp::store_coalesced(tile.block(col), 32));
            ops.push(WarpOp::Barrier);
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::Kernel;
    use gtsc_types::CtaId;

    fn touched_stores(k: &VecKernel, cta: u32) -> std::collections::HashSet<u64> {
        k.program(CtaId(cta), 0)
            .0
            .iter()
            .filter_map(|op| match op {
                WarpOp::Store(a) => Some(a[0].0 / 128),
                _ => None,
            })
            .collect()
    }

    fn touched_loads(k: &VecKernel, cta: u32) -> std::collections::HashSet<u64> {
        k.program(CtaId(cta), 0)
            .0
            .iter()
            .filter_map(|op| match op {
                WarpOp::Load(a) => Some(a[0].0 / 128),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn stn_reads_neighbour_rows() {
        let k = shared_stencil(Scale::Tiny, 5);
        assert!(
            !touched_stores(&k, 0).is_disjoint(&touched_loads(&k, 1)),
            "STN halos must cross CTAs"
        );
    }

    #[test]
    fn hs_tiles_are_private() {
        let k = private_stencil(Scale::Tiny, 5);
        let w0 = touched_stores(&k, 0);
        let w1 = touched_stores(&k, 1);
        assert!(w0.is_disjoint(&w1), "HS tiles must not overlap");
        assert!(
            touched_loads(&k, 1).is_disjoint(&w0),
            "HS reads stay in-tile"
        );
    }

    #[test]
    fn vpr_swaps_write_shared_grid() {
        // All warps draw cells from one shared grid: the union of stores
        // of CTA0's warps must intersect the union of loads of CTA1's.
        let k = place_route(Scale::Small, 5);
        let mut st0 = std::collections::HashSet::new();
        let mut ld1 = std::collections::HashSet::new();
        for w in 0..k.warps_per_cta() {
            for op in &k.program(CtaId(0), w).0 {
                if let WarpOp::Store(a) = op {
                    st0.insert(a[0].0 / 128);
                }
            }
            for op in &k.program(CtaId(1), w).0 {
                if let WarpOp::Load(a) = op {
                    ld1.insert(a[0].0 / 128);
                }
            }
        }
        assert!(!st0.is_disjoint(&ld1), "VPR cells are shared");
    }
}
