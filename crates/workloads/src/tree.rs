//! BH — Barnes-Hut n-body: irregular traversal of a shared tree with
//! read-write sharing on tree nodes (group A).
//!
//! Every warp repeatedly walks a root-to-leaf path of the shared tree
//! (dependent, poorly coalesced loads) and then updates the body it
//! reached (a store other CTAs may subsequently read — the inter-SM
//! sharing that demands coherence). Fences publish each update, as the
//! original CUDA code does between tree phases.

use gtsc_gpu::{VecKernel, WarpOp};
use rand::Rng;

use crate::layout::{assemble, skewed_index, Region, Scale};
use gtsc_types::Addr;

/// Builds the BH kernel.
#[must_use]
pub fn barnes_hut(scale: Scale, seed: u64) -> VecKernel {
    let tree = Region::new(Addr(0), 64 * scale.data_factor());
    let bodies = Region::new(tree.end(), 32 * scale.data_factor());
    let depth = 4;
    assemble("BH", scale, seed, |_cta, _w, rng| {
        let mut ops = Vec::new();
        for _ in 0..scale.iters() {
            // Root-to-leaf walk: dependent node loads.
            let mut idx = 0u64;
            for level in 0..depth {
                ops.push(WarpOp::load_coalesced(tree.block(idx), 32));
                ops.push(WarpOp::Compute(2));
                idx = idx * 4 + 1 + rng.gen_range(0..4u64) + level;
            }
            // Update the reached body; occasionally also re-insert into an
            // upper tree node (the force-update / tree-build sharing).
            // Update the reached body: usually a leaf of one's own
            // subtree (cold), occasionally a contended hot body.
            let body = skewed_index(rng, &bodies, 16, 0.15);
            ops.push(WarpOp::store_coalesced(bodies.block(body), 32));
            if rng.gen_bool(0.3) {
                // Tree insertion claims the child pointer atomically
                // (atomicCAS in the CUDA original).
                ops.push(WarpOp::atomic_coalesced(tree.block(idx), 32));
            }
            ops.push(WarpOp::Fence);
            ops.push(WarpOp::Compute(6));
            // Read bodies other warps may have produced (hot set).
            for _ in 0..3 {
                let other = skewed_index(rng, &bodies, 16, 0.6);
                ops.push(WarpOp::load_coalesced(bodies.block(other), 32));
            }
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::Kernel;
    use gtsc_types::CtaId;

    #[test]
    fn has_shared_stores_and_fences() {
        let k = barnes_hut(Scale::Tiny, 1);
        let p = k.program(CtaId(0), 0);
        assert!(p.0.iter().any(|op| matches!(op, WarpOp::Store(_))));
        assert!(p.0.iter().any(|op| matches!(op, WarpOp::Fence)));
        assert!(p.0.iter().filter(|op| op.is_memory()).count() >= 8);
    }

    #[test]
    fn different_warps_touch_overlapping_regions() {
        // Sharing requires some overlap in touched blocks across warps.
        let k = barnes_hut(Scale::Tiny, 1);
        let blocks = |cta: u32, w: usize| -> std::collections::HashSet<u64> {
            k.program(CtaId(cta), w)
                .0
                .iter()
                .filter_map(|op| match op {
                    WarpOp::Load(a) | WarpOp::Store(a) => Some(a[0].0 >> 7),
                    _ => None,
                })
                .collect()
        };
        let a = blocks(0, 0);
        let b = blocks(1, 0);
        assert!(!a.is_disjoint(&b), "BH warps must share tree/body blocks");
    }
}
