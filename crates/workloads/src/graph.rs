//! Graph workloads (group A): CC — connected components by label
//! propagation, and BFS — frontier expansion with a shared visited map.
//!
//! Both exhibit the irregular, data-dependent sharing the paper's
//! introduction motivates: labels/visited flags are read and written by
//! warps on *different* SMs, with poor coalescing (divergent gathers).

use gtsc_gpu::{VecKernel, WarpOp};
use gtsc_types::Addr;
use rand::Rng;

#[cfg(test)]
use crate::layout::BLOCK;
use crate::layout::{assemble, skewed_index, Region, Scale};

/// Builds the CC (connected components) kernel: label propagation over a
/// random edge list.
#[must_use]
pub fn connected_components(scale: Scale, seed: u64) -> VecKernel {
    let labels = Region::new(Addr(0), 96 * scale.data_factor());
    let edges = Region::new(labels.end(), 128 * scale.data_factor()); // read-only edge list
    assemble("CC", scale, seed, |_cta, _w, rng| {
        let mut ops = Vec::new();
        for i in 0..scale.iters() {
            // Stream a chunk of the edge list (coalesced, read-only).
            ops.push(WarpOp::load_coalesced(
                edges.block(rng.gen_range(0..edges.len())),
                32,
            ));
            // Gather the endpoint labels (divergent, skewed towards the
            // hot high-degree nodes every real graph has).
            let gather: Vec<Addr> = (0..8)
                .map(|_| labels.block(skewed_index(rng, &labels, 16, 0.6)))
                .collect();
            ops.push(WarpOp::Load(gather));
            ops.push(WarpOp::Compute(3));
            // Re-read the hot labels (convergence check) before the
            // scatter: load-dominated, as label propagation is.
            let reread: Vec<Addr> = (0..6)
                .map(|_| labels.block(skewed_index(rng, &labels, 16, 0.7)))
                .collect();
            ops.push(WarpOp::Load(reread));
            // atomicMin the propagated label into the *updated* (mostly
            // fresh, non-hub) nodes — real label propagation rarely
            // rewrites converged hubs, and does it with atomics.
            let scatter: Vec<Addr> = (0..2)
                .map(|_| labels.block(skewed_index(rng, &labels, 16, 0.02)))
                .collect();
            ops.push(WarpOp::Atomic(scatter));
            if i % 3 == 2 {
                ops.push(WarpOp::Fence);
            }
        }
        ops
    })
}

/// Builds the BFS kernel: frontier loads, divergent adjacency gathers,
/// and stores into the shared visited bitmap.
#[must_use]
pub fn bfs(scale: Scale, seed: u64) -> VecKernel {
    let visited = Region::new(Addr(0), 64 * scale.data_factor());
    let adj = Region::new(visited.end(), 256 * scale.data_factor()); // read-only adjacency
    let frontier = Region::new(adj.end(), 16 * scale.data_factor());
    assemble("BFS", scale, seed, |_cta, w, rng| {
        let mut ops = Vec::new();
        for level in 0..scale.iters() {
            // Read the current frontier (shared, rotates per level so
            // CTAs alternately produce and consume it).
            ops.push(WarpOp::load_coalesced(frontier.block(level as u64), 32));
            // Divergent adjacency gather (skewed: high-degree hubs).
            let gather: Vec<Addr> = (0..6)
                .map(|_| adj.block(skewed_index(rng, &adj, 32, 0.5)))
                .collect();
            ops.push(WarpOp::Load(gather));
            ops.push(WarpOp::Compute(2));
            // Check visited (hot shared bitmap, read-dominated) and mark
            // only the genuinely new nodes.
            let checks: Vec<Addr> = (0..4)
                .map(|_| visited.block(skewed_index(rng, &visited, 12, 0.7)))
                .collect();
            ops.push(WarpOp::Load(checks.clone()));
            ops.push(WarpOp::Load(checks[..2].to_vec()));
            // atomicOr the genuinely new (cold) nodes into the visited
            // bitmap, as the CUDA kernels do.
            let v: Vec<Addr> = (0..2)
                .map(|_| visited.block(skewed_index(rng, &visited, 12, 0.05)))
                .collect();
            ops.push(WarpOp::Atomic(v));
            // One warp per CTA claims the next frontier slot with an
            // atomic tail-pointer update.
            if w == 0 {
                ops.push(WarpOp::atomic_coalesced(
                    frontier.block(level as u64 + 1),
                    32,
                ));
            }
            ops.push(WarpOp::Fence);
        }
        ops
    })
}

/// Builds one BFS *level* as its own kernel (real BFS launches one kernel
/// per frontier level, with an implicit device-wide sync — and an L1
/// flush — between launches). Used by
/// [`Benchmark::build_phases`](crate::Benchmark::build_phases).
#[must_use]
pub fn bfs_level(scale: Scale, seed: u64, level: usize) -> VecKernel {
    let visited = Region::new(Addr(0), 64 * scale.data_factor());
    let adj = Region::new(visited.end(), 256 * scale.data_factor());
    let frontier = Region::new(adj.end(), 16 * scale.data_factor());
    assemble(
        &format!("BFS-L{level}"),
        scale,
        seed ^ (level as u64) << 32,
        move |_cta, w, rng| {
            let mut ops = Vec::new();
            ops.push(WarpOp::load_coalesced(frontier.block(level as u64), 32));
            for _ in 0..3 {
                let gather: Vec<Addr> = (0..6)
                    .map(|_| adj.block(skewed_index(rng, &adj, 32, 0.5)))
                    .collect();
                ops.push(WarpOp::Load(gather));
                ops.push(WarpOp::Compute(2));
                let checks: Vec<Addr> = (0..4)
                    .map(|_| visited.block(skewed_index(rng, &visited, 12, 0.7)))
                    .collect();
                ops.push(WarpOp::Load(checks));
                let v: Vec<Addr> = (0..2)
                    .map(|_| visited.block(skewed_index(rng, &visited, 12, 0.05)))
                    .collect();
                ops.push(WarpOp::Atomic(v));
            }
            if w == 0 {
                ops.push(WarpOp::atomic_coalesced(
                    frontier.block(level as u64 + 1),
                    32,
                ));
            }
            ops.push(WarpOp::Fence);
            ops
        },
    )
}

/// Shared helper for tests: the set of block indices a program touches.
#[cfg(test)]
fn touched(k: &VecKernel, cta: u32, w: usize) -> std::collections::HashSet<u64> {
    use gtsc_gpu::Kernel;
    k.program(gtsc_types::CtaId(cta), w)
        .0
        .iter()
        .filter_map(|op| match op {
            WarpOp::Load(a) | WarpOp::Store(a) => Some(a.iter().map(|x| x.0 / BLOCK)),
            _ => None,
        })
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_has_divergent_gathers() {
        use gtsc_gpu::Kernel;
        let k = connected_components(Scale::Tiny, 7);
        let p = k.program(gtsc_types::CtaId(0), 0);
        let has_divergent = p.0.iter().any(|op| {
            if let WarpOp::Load(a) = op {
                let blocks: std::collections::HashSet<u64> =
                    a.iter().map(|x| x.0 / BLOCK).collect();
                blocks.len() > 1
            } else {
                false
            }
        });
        assert!(has_divergent, "CC must gather across blocks");
    }

    #[test]
    fn graph_warps_share_state() {
        let cc = connected_components(Scale::Tiny, 7);
        assert!(!touched(&cc, 0, 0).is_disjoint(&touched(&cc, 1, 0)));
        let bfs = bfs(Scale::Tiny, 9);
        assert!(!touched(&bfs, 0, 0).is_disjoint(&touched(&bfs, 1, 0)));
    }

    #[test]
    fn bfs_has_fences_every_level() {
        use gtsc_gpu::Kernel;
        let k = bfs(Scale::Tiny, 9);
        let p = k.program(gtsc_types::CtaId(0), 0);
        let fences = p.0.iter().filter(|op| matches!(op, WarpOp::Fence)).count();
        assert_eq!(fences, Scale::Tiny.iters());
    }
}
