//! Litmus micro-kernels used by the correctness test-suite.
//!
//! Each returns a tiny kernel whose CTAs land on different SMs, making
//! the classic consistency shapes observable: message passing (MP),
//! store buffering (SB), and coherent read-read (CoRR). The integration
//! tests assert the forbidden outcomes never appear under the protocols
//! and consistency models that must exclude them.

use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_types::Addr;

/// Block addresses used by the litmus kernels (distinct blocks).
pub const DATA: Addr = Addr(0);
/// Flag block for MP.
pub const FLAG: Addr = Addr(128);
/// `X` for SB.
pub const X: Addr = Addr(256);
/// `Y` for SB.
pub const Y: Addr = Addr(384);

/// Message passing: CTA0 stores DATA then FLAG (fenced); CTA1 loads FLAG
/// then DATA (fenced). Forbidden: observing the new FLAG but the old
/// DATA.
///
/// `repeats` controls how many delayed reads CTA1 performs, increasing
/// the chance of racing the writer in interesting ways.
#[must_use]
pub fn message_passing(repeats: usize) -> VecKernel {
    let writer = WarpProgram(vec![
        WarpOp::store_coalesced(DATA, 32),
        WarpOp::Fence,
        WarpOp::store_coalesced(FLAG, 32),
        WarpOp::Fence,
    ]);
    let mut reader_ops = Vec::new();
    for i in 0..repeats.max(1) {
        reader_ops.push(WarpOp::Compute(1 + i as u32 * 3));
        reader_ops.push(WarpOp::load_coalesced(FLAG, 32));
        reader_ops.push(WarpOp::Fence);
        reader_ops.push(WarpOp::load_coalesced(DATA, 32));
        reader_ops.push(WarpOp::Fence);
    }
    VecKernel::new(
        "litmus-mp",
        1,
        vec![vec![writer], vec![WarpProgram(reader_ops)]],
    )
}

/// Store buffering: CTA0 does `X=1; r0=Y`, CTA1 does `Y=1; r1=X`.
/// Under SC at least one reader must observe the other's store.
#[must_use]
pub fn store_buffering() -> VecKernel {
    let t0 = WarpProgram(vec![
        WarpOp::store_coalesced(X, 32),
        WarpOp::load_coalesced(Y, 32),
    ]);
    let t1 = WarpProgram(vec![
        WarpOp::store_coalesced(Y, 32),
        WarpOp::load_coalesced(X, 32),
    ]);
    VecKernel::new("litmus-sb", 1, vec![vec![t0], vec![t1]])
}

/// Coherent read-read (CoRR): CTA0 stores DATA once; CTA1 reads it twice
/// in order. Forbidden under any coherent protocol: the second read
/// observing an *older* value than the first.
#[must_use]
pub fn coherent_read_read(repeats: usize) -> VecKernel {
    let writer = WarpProgram(vec![WarpOp::Compute(7), WarpOp::store_coalesced(DATA, 32)]);
    let mut reader_ops = Vec::new();
    for _ in 0..repeats.max(2) {
        reader_ops.push(WarpOp::load_coalesced(DATA, 32));
        reader_ops.push(WarpOp::Fence);
    }
    VecKernel::new(
        "litmus-corr",
        1,
        vec![vec![writer], vec![WarpProgram(reader_ops)]],
    )
}

/// Message passing with the precise release/acquire fence pair instead of
/// full fences: the writer releases before publishing the flag, the
/// reader acquires after reading it. The forbidden outcome is the same as
/// [`message_passing`]'s.
#[must_use]
pub fn message_passing_rel_acq(repeats: usize) -> VecKernel {
    let writer = WarpProgram(vec![
        WarpOp::store_coalesced(DATA, 32),
        WarpOp::ReleaseFence,
        WarpOp::store_coalesced(FLAG, 32),
    ]);
    let mut reader_ops = Vec::new();
    for i in 0..repeats.max(1) {
        reader_ops.push(WarpOp::Compute(1 + i as u32 * 3));
        reader_ops.push(WarpOp::load_coalesced(FLAG, 32));
        reader_ops.push(WarpOp::AcquireFence);
        reader_ops.push(WarpOp::load_coalesced(DATA, 32));
        reader_ops.push(WarpOp::AcquireFence);
    }
    VecKernel::new(
        "litmus-mp-ra",
        1,
        vec![vec![writer], vec![WarpProgram(reader_ops)]],
    )
}

/// IRIW (independent reads of independent writes): CTA0 stores X, CTA1
/// stores Y, CTA2 reads X then Y, CTA3 reads Y then X (fenced). Under SC
/// the two readers must agree on the store order: it is forbidden for
/// reader2 to see (new X, old Y) while reader3 sees (new Y, old X).
#[must_use]
pub fn iriw() -> VecKernel {
    let wx = WarpProgram(vec![WarpOp::store_coalesced(X, 32)]);
    let wy = WarpProgram(vec![WarpOp::store_coalesced(Y, 32)]);
    let r_xy = WarpProgram(vec![
        WarpOp::load_coalesced(X, 32),
        WarpOp::Fence,
        WarpOp::load_coalesced(Y, 32),
    ]);
    let r_yx = WarpProgram(vec![
        WarpOp::load_coalesced(Y, 32),
        WarpOp::Fence,
        WarpOp::load_coalesced(X, 32),
    ]);
    VecKernel::new(
        "litmus-iriw",
        1,
        vec![vec![wx], vec![wy], vec![r_xy], vec![r_yx]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::Kernel;
    use gtsc_types::CtaId;

    #[test]
    fn shapes_are_two_cta_single_warp() {
        for k in [message_passing(3), store_buffering(), coherent_read_read(4)] {
            assert_eq!(k.n_ctas(), 2, "{}", k.name());
            assert_eq!(k.warps_per_cta(), 1, "{}", k.name());
            assert!(!k.program(CtaId(0), 0).is_empty());
            assert!(!k.program(CtaId(1), 0).is_empty());
        }
    }

    #[test]
    fn litmus_blocks_are_distinct() {
        let blocks = [DATA.0 / 128, FLAG.0 / 128, X.0 / 128, Y.0 / 128];
        let unique: std::collections::HashSet<u64> = blocks.iter().copied().collect();
        assert_eq!(unique.len(), 4);
    }
}
