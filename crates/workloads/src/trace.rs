//! Trace-driven kernels: build a [`VecKernel`] from a simple text format,
//! so externally captured memory traces (e.g. from an instrumented CUDA
//! run) can be replayed through the simulator.
//!
//! # Format
//!
//! Line-oriented; `#` starts a comment. A trace declares one kernel and
//! then one section per warp:
//!
//! ```text
//! kernel mykernel ctas=2 warps_per_cta=1
//! cta 0 warp 0
//!   ld 0x100 0x180 0x200   # one load instruction, three lane addresses
//!   st 0x100
//!   at 0x300                # atomic RMW
//!   compute 12
//!   fence                   # full fence; also: fence.rel / fence.acq
//!   barrier
//! cta 1 warp 0
//!   ld 0x100
//! ```
//!
//! Addresses are hex (`0x…`) or decimal byte addresses. Warps not given a
//! section run empty programs.
//!
//! # Examples
//!
//! ```
//! use gtsc_workloads::trace::parse_trace;
//! use gtsc_gpu::Kernel;
//!
//! let k = parse_trace("kernel t ctas=1 warps_per_cta=1\ncta 0 warp 0\nld 0x80\n")?;
//! assert_eq!(k.name(), "t");
//! assert_eq!(k.n_ctas(), 1);
//! # Ok::<(), gtsc_workloads::trace::TraceError>(())
//! ```

use std::fmt;

use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_types::Addr;

/// Why a trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    line: usize,
    message: String,
}

impl TraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn parse_addr(tok: &str, line: usize) -> Result<Addr, TraceError> {
    let v = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    v.map(Addr)
        .map_err(|_| TraceError::new(line, format!("bad address `{tok}`")))
}

fn parse_addr_list(toks: &[&str], line: usize) -> Result<Vec<Addr>, TraceError> {
    if toks.is_empty() {
        return Err(TraceError::new(
            line,
            "memory op needs at least one address",
        ));
    }
    toks.iter().map(|t| parse_addr(t, line)).collect()
}

/// Parses the trace text into a kernel.
///
/// # Errors
///
/// Returns a [`TraceError`] naming the offending line for any syntax
/// problem, out-of-range CTA/warp index, or missing `kernel` header.
pub fn parse_trace(text: &str) -> Result<VecKernel, TraceError> {
    let mut name = None;
    let mut n_ctas = 0usize;
    let mut warps_per_cta = 0usize;
    let mut programs: Vec<Vec<Vec<WarpOp>>> = Vec::new();
    let mut current: Option<(usize, usize)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "kernel" => {
                if toks.len() != 4 {
                    return Err(TraceError::new(
                        line_no,
                        "expected: kernel <name> ctas=<n> warps_per_cta=<m>",
                    ));
                }
                let ctas = toks[2]
                    .strip_prefix("ctas=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| TraceError::new(line_no, "bad ctas=<n>"))?;
                let wpc = toks[3]
                    .strip_prefix("warps_per_cta=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| TraceError::new(line_no, "bad warps_per_cta=<m>"))?;
                if ctas == 0 || wpc == 0 {
                    return Err(TraceError::new(
                        line_no,
                        "ctas and warps_per_cta must be nonzero",
                    ));
                }
                name = Some(toks[1].to_owned());
                n_ctas = ctas;
                warps_per_cta = wpc;
                programs = vec![vec![Vec::new(); wpc]; ctas];
            }
            "cta" => {
                if name.is_none() {
                    return Err(TraceError::new(line_no, "cta before kernel header"));
                }
                if toks.len() != 4 || toks[2] != "warp" {
                    return Err(TraceError::new(line_no, "expected: cta <i> warp <j>"));
                }
                let c: usize = toks[1]
                    .parse()
                    .map_err(|_| TraceError::new(line_no, "bad cta index"))?;
                let w: usize = toks[3]
                    .parse()
                    .map_err(|_| TraceError::new(line_no, "bad warp index"))?;
                if c >= n_ctas || w >= warps_per_cta {
                    return Err(TraceError::new(
                        line_no,
                        format!("cta {c} warp {w} out of range"),
                    ));
                }
                current = Some((c, w));
            }
            op @ ("ld" | "st" | "at" | "compute" | "fence" | "fence.rel" | "fence.acq"
            | "barrier") => {
                let Some((c, w)) = current else {
                    return Err(TraceError::new(
                        line_no,
                        "instruction before any `cta ... warp ...`",
                    ));
                };
                let parsed = match op {
                    "ld" => WarpOp::Load(parse_addr_list(&toks[1..], line_no)?),
                    "st" => WarpOp::Store(parse_addr_list(&toks[1..], line_no)?),
                    "at" => WarpOp::Atomic(parse_addr_list(&toks[1..], line_no)?),
                    "compute" => {
                        let c: u32 = toks.get(1).and_then(|v| v.parse().ok()).ok_or_else(|| {
                            TraceError::new(line_no, "compute needs a cycle count")
                        })?;
                        WarpOp::Compute(c)
                    }
                    "fence" => WarpOp::Fence,
                    "fence.rel" => WarpOp::ReleaseFence,
                    "fence.acq" => WarpOp::AcquireFence,
                    _ => WarpOp::Barrier,
                };
                programs[c][w].push(parsed);
            }
            other => {
                return Err(TraceError::new(
                    line_no,
                    format!("unknown directive `{other}`"),
                ))
            }
        }
    }

    let Some(name) = name else {
        return Err(TraceError::new(0, "missing `kernel` header"));
    };
    let ctas = programs
        .into_iter()
        .map(|cta| cta.into_iter().map(WarpProgram).collect())
        .collect();
    Ok(VecKernel::new(&name, warps_per_cta, ctas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::Kernel;
    use gtsc_types::CtaId;

    const GOOD: &str = "\
# producer/consumer
kernel pc ctas=2 warps_per_cta=2
cta 0 warp 0
  st 0x0
  fence
  at 0x80
cta 1 warp 1
  ld 0x80 0x100   # divergent
  compute 7
  barrier
";

    #[test]
    fn parses_full_trace() {
        let k = parse_trace(GOOD).expect("parses");
        assert_eq!(k.name(), "pc");
        assert_eq!(k.n_ctas(), 2);
        assert_eq!(k.warps_per_cta(), 2);
        let p = k.program(CtaId(0), 0);
        assert_eq!(
            p.0,
            vec![
                WarpOp::Store(vec![Addr(0)]),
                WarpOp::Fence,
                WarpOp::Atomic(vec![Addr(0x80)]),
            ]
        );
        let p = k.program(CtaId(1), 1);
        assert_eq!(p.0.len(), 3);
        assert_eq!(p.0[0], WarpOp::Load(vec![Addr(0x80), Addr(0x100)]));
        // Unmentioned warps are empty.
        assert!(k.program(CtaId(0), 1).is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("kernel t ctas=1 warps_per_cta=1\ncta 0 warp 0\nld\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("at least one address"));

        let e = parse_trace("ld 0x0\n").unwrap_err();
        assert!(e.to_string().contains("before any"));

        let e = parse_trace("kernel t ctas=1 warps_per_cta=1\ncta 5 warp 0\n").unwrap_err();
        assert!(e.to_string().contains("out of range"));

        let e = parse_trace("").unwrap_err();
        assert!(e.to_string().contains("missing `kernel`"));

        let e =
            parse_trace("kernel t ctas=1 warps_per_cta=1\ncta 0 warp 0\nfrobnicate\n").unwrap_err();
        assert!(e.to_string().contains("unknown directive"));
    }

    #[test]
    fn fence_variants_parse() {
        let k = parse_trace(
            "kernel t ctas=1 warps_per_cta=1\ncta 0 warp 0\nst 0x0\nfence.rel\nld 0x80\nfence.acq\n",
        )
        .unwrap();
        let p = k.program(CtaId(0), 0);
        assert_eq!(p.0[1], WarpOp::ReleaseFence);
        assert_eq!(p.0[3], WarpOp::AcquireFence);
    }

    #[test]
    fn hex_and_decimal_addresses() {
        let k =
            parse_trace("kernel t ctas=1 warps_per_cta=1\ncta 0 warp 0\nld 0x80 128\n").unwrap();
        let p = k.program(CtaId(0), 0);
        assert_eq!(p.0[0], WarpOp::Load(vec![Addr(0x80), Addr(128)]));
    }

    #[test]
    fn roundtrip_is_stable() {
        // Parsing the same text twice yields identical kernels (the
        // end-to-end simulator run of a traced kernel is covered by the
        // workspace integration tests, which may depend on gtsc-sim).
        let a = parse_trace(GOOD).expect("parses");
        let b = parse_trace(GOOD).expect("parses");
        for c in 0..a.n_ctas() {
            for w in 0..a.warps_per_cta() {
                assert_eq!(a.program(CtaId(c as u32), w), b.program(CtaId(c as u32), w));
            }
        }
    }
}
