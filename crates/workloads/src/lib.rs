//! Workload generators reproducing the memory behaviour of the paper's
//! twelve benchmarks (Section VI-A), plus litmus micro-kernels.
//!
//! The paper evaluates two benchmark groups:
//!
//! * **Group A — require coherence** (left cluster of Figure 12):
//!   `BH, CC, DLP, VPR, STN, BFS`. These perform inter-CTA read-write
//!   sharing, so a non-coherent L1 would return stale data.
//! * **Group B — no coherence needed** (right cluster):
//!   `CCP, GE, HS, KM, BP, SGM`. Streaming / CTA-private / read-only
//!   sharing patterns.
//!
//! We do not have the original CUDA binaries or the authors' GPGPU-Sim
//! traces, so each benchmark is modelled by a deterministic generator
//! that reproduces its *memory-behaviour class* — the sharing pattern,
//! locality, and compute/memory ratio that drive the coherence protocols
//! (the substitution is documented in `DESIGN.md`). Generators are seeded
//! and deterministic: the same [`Scale`] and seed always produce the same
//! instruction streams.
//!
//! # Examples
//!
//! ```
//! use gtsc_workloads::{Benchmark, Scale};
//! use gtsc_gpu::Kernel;
//!
//! let bh = Benchmark::Bh.build(Scale::Tiny);
//! assert_eq!(bh.name(), "BH");
//! assert!(Benchmark::Bh.requires_coherence());
//! assert!(!Benchmark::Km.requires_coherence());
//! assert_eq!(Benchmark::all().len(), 12);
//! ```

pub mod graph;
pub mod grid;
pub mod layout;
pub mod micro;
pub mod pipeline;
pub mod stream;
pub mod trace;
pub mod tree;

use gtsc_gpu::Kernel;

pub use layout::{Region, Scale};

/// The twelve benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Barnes-Hut n-body: irregular tree traversal with shared updates.
    Bh,
    /// Connected components: label propagation over a random graph.
    Cc,
    /// Data-layout pipeline: cross-CTA producer/consumer tiles.
    Dlp,
    /// Place & route: randomized swaps on a shared cost grid.
    Vpr,
    /// Stencil with halo rows written by neighbouring CTAs.
    Stn,
    /// Breadth-first search: frontier expansion with a shared visited map.
    Bfs,
    /// Compute-dominated kernel with sparse streaming reads.
    Ccp,
    /// Gaussian elimination: row streaming, write-once.
    Ge,
    /// Hotspot stencil on CTA-private tiles.
    Hs,
    /// K-means: streaming points against a read-only centroid table.
    Km,
    /// Backprop: layered streaming with private weight updates.
    Bp,
    /// Semi-global matching: banded streaming with heavy reuse.
    Sgm,
}

impl Benchmark {
    /// All twelve benchmarks in the paper's presentation order
    /// (group A, then group B).
    #[must_use]
    pub fn all() -> [Benchmark; 12] {
        [
            Benchmark::Bh,
            Benchmark::Cc,
            Benchmark::Dlp,
            Benchmark::Vpr,
            Benchmark::Stn,
            Benchmark::Bfs,
            Benchmark::Ccp,
            Benchmark::Ge,
            Benchmark::Hs,
            Benchmark::Km,
            Benchmark::Bp,
            Benchmark::Sgm,
        ]
    }

    /// The six benchmarks that require coherence for correctness.
    #[must_use]
    pub fn group_a() -> [Benchmark; 6] {
        [
            Benchmark::Bh,
            Benchmark::Cc,
            Benchmark::Dlp,
            Benchmark::Vpr,
            Benchmark::Stn,
            Benchmark::Bfs,
        ]
    }

    /// The six benchmarks that do not.
    #[must_use]
    pub fn group_b() -> [Benchmark; 6] {
        [
            Benchmark::Ccp,
            Benchmark::Ge,
            Benchmark::Hs,
            Benchmark::Km,
            Benchmark::Bp,
            Benchmark::Sgm,
        ]
    }

    /// Paper name of the benchmark.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bh => "BH",
            Benchmark::Cc => "CC",
            Benchmark::Dlp => "DLP",
            Benchmark::Vpr => "VPR",
            Benchmark::Stn => "STN",
            Benchmark::Bfs => "BFS",
            Benchmark::Ccp => "CCP",
            Benchmark::Ge => "GE",
            Benchmark::Hs => "HS",
            Benchmark::Km => "KM",
            Benchmark::Bp => "BP",
            Benchmark::Sgm => "SGM",
        }
    }

    /// Whether the benchmark needs hardware coherence for correctness
    /// (group A of the evaluation).
    #[must_use]
    pub fn requires_coherence(self) -> bool {
        matches!(
            self,
            Benchmark::Bh
                | Benchmark::Cc
                | Benchmark::Dlp
                | Benchmark::Vpr
                | Benchmark::Stn
                | Benchmark::Bfs
        )
    }

    /// Builds the benchmark as a *sequence of kernel launches*, the way
    /// the real applications run (BFS launches one kernel per frontier
    /// level; iterative benchmarks relaunch per sweep). Private caches
    /// are flushed between launches, which is itself protocol-relevant —
    /// see `GpuSim::run_kernels`. Benchmarks without a natural phase
    /// structure return their single kernel.
    #[must_use]
    pub fn build_phases(self, scale: Scale) -> Vec<Box<dyn Kernel>> {
        match self {
            Benchmark::Bfs => (0..scale.iters().min(6))
                .map(|level| Box::new(graph::bfs_level(scale, 0xBF, level)) as Box<dyn Kernel>)
                .collect(),
            other => vec![other.build(scale)],
        }
    }

    /// Builds the benchmark's kernel at the given scale (seeded
    /// deterministically by the benchmark identity).
    #[must_use]
    pub fn build(self, scale: Scale) -> Box<dyn Kernel> {
        match self {
            Benchmark::Bh => Box::new(tree::barnes_hut(scale, 0xB4)),
            Benchmark::Cc => Box::new(graph::connected_components(scale, 0xCC)),
            Benchmark::Dlp => Box::new(pipeline::producer_consumer(scale, 0xD1)),
            Benchmark::Vpr => Box::new(grid::place_route(scale, 0x7B)),
            Benchmark::Stn => Box::new(grid::shared_stencil(scale, 0x57)),
            Benchmark::Bfs => Box::new(graph::bfs(scale, 0xBF)),
            Benchmark::Ccp => Box::new(stream::compute_heavy(scale, 0xC9)),
            Benchmark::Ge => Box::new(stream::gaussian_elim(scale, 0x6E)),
            Benchmark::Hs => Box::new(grid::private_stencil(scale, 0x45)),
            Benchmark::Km => Box::new(stream::kmeans(scale, 0x4B)),
            Benchmark::Bp => Box::new(stream::backprop(scale, 0xB9)),
            Benchmark::Sgm => Box::new(stream::sgm(scale, 0x56)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::CtaId;

    #[test]
    fn groups_partition_the_set() {
        let mut all: Vec<_> = Benchmark::group_a().to_vec();
        all.extend(Benchmark::group_b());
        assert_eq!(all.len(), 12);
        for b in Benchmark::all() {
            assert!(all.contains(&b));
        }
        for b in Benchmark::group_a() {
            assert!(b.requires_coherence());
        }
        for b in Benchmark::group_b() {
            assert!(!b.requires_coherence());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for b in Benchmark::all() {
            let k1 = b.build(Scale::Tiny);
            let k2 = b.build(Scale::Tiny);
            assert_eq!(k1.n_ctas(), k2.n_ctas(), "{}", b.name());
            for cta in 0..k1.n_ctas() {
                for w in 0..k1.warps_per_cta() {
                    assert_eq!(
                        k1.program(CtaId(cta as u32), w),
                        k2.program(CtaId(cta as u32), w),
                        "{} cta{cta} w{w}",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn phases_are_nonempty_and_bfs_is_multi_kernel() {
        for b in Benchmark::all() {
            let phases = b.build_phases(Scale::Tiny);
            assert!(!phases.is_empty(), "{}", b.name());
        }
        assert!(Benchmark::Bfs.build_phases(Scale::Tiny).len() > 1);
        assert_eq!(Benchmark::Hs.build_phases(Scale::Tiny).len(), 1);
    }

    #[test]
    fn every_benchmark_has_work() {
        for b in Benchmark::all() {
            let k = b.build(Scale::Tiny);
            assert!(k.n_ctas() >= 2, "{}", b.name());
            let p = k.program(CtaId(0), 0);
            assert!(!p.is_empty(), "{}", b.name());
        }
    }
}
