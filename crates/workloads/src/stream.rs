//! Group-B streaming workloads — no inter-CTA read-write sharing, so no
//! coherence is required. The paper uses these to measure the *overhead*
//! a coherence protocol imposes when it is not needed (right cluster of
//! Figure 12): CCP (compute-bound), GE (row streaming, write-once),
//! KM (streaming against a read-only table), BP (layered streaming),
//! SGM (banded streaming with reuse).

use gtsc_gpu::{VecKernel, WarpOp};
use gtsc_types::Addr;
use rand::Rng;

use crate::layout::{assemble, Region, Scale};

fn total_warps(scale: Scale) -> u64 {
    (scale.ctas() * scale.warps_per_cta()) as u64
}

fn warp_index(scale: Scale, cta: u64, w: u64) -> u64 {
    cta * scale.warps_per_cta() as u64 + w
}

/// Builds the CCP kernel: long compute bursts with sparse private
/// streaming reads (compute-intensive; stalls hide behind execution).
#[must_use]
pub fn compute_heavy(scale: Scale, seed: u64) -> VecKernel {
    let data = Region::new(Addr(0), 64 * total_warps(scale));
    assemble("CCP", scale, seed, move |cta, w, rng| {
        let mine = data.slice(warp_index(scale, cta, w), total_warps(scale));
        let mut ops = Vec::new();
        for i in 0..scale.iters() as u64 {
            ops.push(WarpOp::Compute(30 + rng.gen_range(0..20)));
            ops.push(WarpOp::load_coalesced(mine.block(i), 32));
            ops.push(WarpOp::Compute(25 + rng.gen_range(0..10)));
            if i % 4 == 3 {
                ops.push(WarpOp::store_coalesced(mine.block(i), 32));
            }
        }
        ops
    })
}

/// Builds the GE kernel: Gaussian-elimination-style row streaming where
/// each output block is written exactly once (the write-once pattern that
/// makes invalidation protocols waste refills, Section II-C).
#[must_use]
pub fn gaussian_elim(scale: Scale, seed: u64) -> VecKernel {
    let rows = Region::new(Addr(0), 16 * total_warps(scale));
    assemble("GE", scale, seed, move |cta, w, rng| {
        let mine = rows.slice(warp_index(scale, cta, w), total_warps(scale));
        let mut ops = Vec::new();
        for i in 0..scale.iters() as u64 {
            // Read a moving window of three row blocks.
            for d in 0..3 {
                ops.push(WarpOp::load_coalesced(mine.block(i + d), 32));
            }
            ops.push(WarpOp::Compute(6 + rng.gen_range(0..4)));
            // Write each result block exactly once.
            ops.push(WarpOp::store_coalesced(mine.block(i), 32));
        }
        ops
    })
}

/// Builds the KM kernel: stream private points against a small read-only
/// centroid table shared by everyone (read-only sharing is coherence-free).
#[must_use]
pub fn kmeans(scale: Scale, seed: u64) -> VecKernel {
    let centroids = Region::new(Addr(0), 8);
    let points = Region::new(centroids.end(), 32 * total_warps(scale));
    let assign = Region::new(points.end(), 8 * total_warps(scale));
    assemble("KM", scale, seed, move |cta, w, rng| {
        let my_points = points.slice(warp_index(scale, cta, w), total_warps(scale));
        let my_assign = assign.slice(warp_index(scale, cta, w), total_warps(scale));
        let mut ops = Vec::new();
        for i in 0..scale.iters() as u64 {
            ops.push(WarpOp::load_coalesced(my_points.block(i), 32));
            // Distance to a couple of centroids (shared, read-only).
            ops.push(WarpOp::load_coalesced(
                centroids.block(rng.gen_range(0..8)),
                32,
            ));
            ops.push(WarpOp::load_coalesced(
                centroids.block(rng.gen_range(0..8)),
                32,
            ));
            ops.push(WarpOp::Compute(12));
            ops.push(WarpOp::store_coalesced(my_assign.block(i), 32));
        }
        ops
    })
}

/// Builds the BP kernel: layered forward/backward streaming with private
/// weight updates and per-layer barriers.
#[must_use]
pub fn backprop(scale: Scale, seed: u64) -> VecKernel {
    let input = Region::new(Addr(0), 32); // shared, read-only
    let weights = Region::new(input.end(), 24 * total_warps(scale));
    assemble("BP", scale, seed, move |cta, w, rng| {
        let mine = weights.slice(warp_index(scale, cta, w), total_warps(scale));
        let mut ops = Vec::new();
        for layer in 0..scale.iters() as u64 {
            ops.push(WarpOp::load_coalesced(input.block(layer), 32));
            ops.push(WarpOp::load_coalesced(mine.block(layer), 32));
            ops.push(WarpOp::Compute(8 + rng.gen_range(0..6)));
            ops.push(WarpOp::store_coalesced(mine.block(layer), 32));
            ops.push(WarpOp::Barrier);
        }
        ops
    })
}

/// Builds the SGM kernel: banded streaming with strong short-range reuse
/// (a cache-friendly group-B workload).
#[must_use]
pub fn sgm(scale: Scale, seed: u64) -> VecKernel {
    let bands = Region::new(Addr(0), 24 * total_warps(scale));
    let out = Region::new(bands.end(), 12 * total_warps(scale));
    assemble("SGM", scale, seed, move |cta, w, rng| {
        let my_band = bands.slice(warp_index(scale, cta, w), total_warps(scale));
        let my_out = out.slice(warp_index(scale, cta, w), total_warps(scale));
        let mut ops = Vec::new();
        for i in 0..scale.iters() as u64 {
            // Sliding band with re-reads (reuse makes L1 matter).
            ops.push(WarpOp::load_coalesced(my_band.block(i), 32));
            ops.push(WarpOp::load_coalesced(my_band.block(i + 1), 32));
            ops.push(WarpOp::load_coalesced(my_band.block(i), 32));
            ops.push(WarpOp::Compute(4 + rng.gen_range(0..4)));
            ops.push(WarpOp::store_coalesced(my_out.block(i), 32));
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::Kernel;
    use gtsc_types::CtaId;

    fn stores(k: &VecKernel, cta: u32, w: usize) -> std::collections::HashSet<u64> {
        k.program(CtaId(cta), w)
            .0
            .iter()
            .filter_map(|op| match op {
                WarpOp::Store(a) => Some(a[0].0 / 128),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn group_b_stores_never_overlap_across_warps() {
        for k in [
            compute_heavy(Scale::Tiny, 1),
            gaussian_elim(Scale::Tiny, 2),
            kmeans(Scale::Tiny, 3),
            backprop(Scale::Tiny, 4),
            sgm(Scale::Tiny, 5),
        ] {
            let a = stores(&k, 0, 0);
            let b = stores(&k, 0, 1);
            let c = stores(&k, 1, 0);
            assert!(a.is_disjoint(&b), "{}: warp stores overlap", k.name());
            assert!(a.is_disjoint(&c), "{}: CTA stores overlap", k.name());
        }
    }

    #[test]
    fn ccp_is_compute_dominated() {
        let k = compute_heavy(Scale::Tiny, 1);
        let p = k.program(CtaId(0), 0);
        let compute: u32 =
            p.0.iter()
                .map(|op| if let WarpOp::Compute(c) = op { *c } else { 0 })
                .sum();
        let mem = p.0.iter().filter(|op| op.is_memory()).count() as u32;
        assert!(compute > mem * 10, "compute {compute} vs mem ops {mem}");
    }

    #[test]
    fn ge_writes_each_block_once() {
        let k = gaussian_elim(Scale::Tiny, 2);
        let p = k.program(CtaId(0), 0);
        let mut counts = std::collections::HashMap::new();
        for op in &p.0 {
            if let WarpOp::Store(a) = op {
                *counts.entry(a[0].0 / 128).or_insert(0) += 1;
            }
        }
        assert!(counts.values().all(|&c| c == 1), "GE is write-once");
    }

    #[test]
    fn sgm_rereads_for_reuse() {
        let k = sgm(Scale::Tiny, 5);
        let p = k.program(CtaId(0), 0);
        let loads: Vec<u64> =
            p.0.iter()
                .filter_map(|op| match op {
                    WarpOp::Load(a) => Some(a[0].0 / 128),
                    _ => None,
                })
                .collect();
        let unique: std::collections::HashSet<u64> = loads.iter().copied().collect();
        assert!(loads.len() > unique.len(), "SGM must re-read blocks");
    }
}
