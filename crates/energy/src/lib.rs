//! Event-energy model standing in for GPUWattch (Section VI-A).
//!
//! GPUWattch couples GPGPU-Sim to McPAT; we use the standard
//! event-energy approach instead: every architectural event (cache
//! access, DRAM burst, NoC flit, issued instruction) costs a fixed
//! energy, plus static leakage per cycle. The per-event constants are
//! order-of-magnitude values from the CACTI/GPUWattch literature for a
//! ~40 nm GPU (documented on [`EnergyParams`]); since the paper's energy
//! results (Figures 16 and 17) are *relative* (normalized to the no-L1
//! baseline), only the ratios between event classes matter for
//! reproducing their shape.
//!
//! # Examples
//!
//! ```
//! use gtsc_energy::{EnergyModel, EnergyParams};
//! use gtsc_types::{Cycle, SimStats};
//!
//! let model = EnergyModel::new(EnergyParams::default());
//! let stats = SimStats { cycles: Cycle(1_000), ..SimStats::default() };
//! let e = model.estimate(&stats);
//! assert!(e.static_nj > 0.0);
//! assert_eq!(e.l1_nj, 0.0);
//! ```

use gtsc_types::SimStats;

/// Per-event energy constants, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One L1 tag+data access (16 KiB SRAM): ~0.06 nJ.
    pub l1_access_nj: f64,
    /// One L1 tag-only probe (a miss detection, or a renewal's
    /// lease-field update — no data array involved): ~0.015 nJ.
    pub l1_tag_nj: f64,
    /// One L1 data-array fill (writing a 128 B line): ~0.09 nJ.
    pub l1_fill_nj: f64,
    /// One L2 bank access (128 KiB SRAM): ~0.25 nJ.
    pub l2_access_nj: f64,
    /// One 128-byte DRAM burst (GDDR activate+IO amortized): ~16 nJ.
    pub dram_burst_nj: f64,
    /// One 32-byte flit traversing the crossbar: ~0.08 nJ.
    pub noc_flit_nj: f64,
    /// Dynamic energy per issued instruction (datapath + RF): ~0.3 nJ.
    pub issue_nj: f64,
    /// Dynamic energy per SM-active cycle (scheduler, pipeline clocks).
    pub sm_active_nj: f64,
    /// Chip-wide static power expressed as energy per cycle (~30 W at
    /// 1 GHz ⇒ 30 nJ/cycle).
    pub static_nj_per_cycle: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            l1_access_nj: 0.06,
            l1_tag_nj: 0.015,
            l1_fill_nj: 0.09,
            l2_access_nj: 0.25,
            dram_burst_nj: 16.0,
            noc_flit_nj: 0.08,
            issue_nj: 0.3,
            sm_active_nj: 0.12,
            static_nj_per_cycle: 30.0,
        }
    }
}

/// Energy totals per component, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Private-cache accesses (the Figure 17 metric).
    pub l1_nj: f64,
    /// Shared-cache accesses.
    pub l2_nj: f64,
    /// DRAM bursts.
    pub dram_nj: f64,
    /// Interconnect flits.
    pub noc_nj: f64,
    /// Core dynamic (issue + active cycles).
    pub core_nj: f64,
    /// Static leakage over the whole run.
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.l1_nj + self.l2_nj + self.dram_nj + self.noc_nj + self.core_nj + self.static_nj
    }

    /// Total energy in joules (Figure 17 reports joules).
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.total_nj() * 1e-9
    }
}

/// Maps [`SimStats`] to an [`EnergyBreakdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given constants.
    #[must_use]
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The constants in use.
    #[must_use]
    pub fn params(&self) -> EnergyParams {
        self.params
    }

    /// Estimates the energy of a finished run.
    ///
    /// The L1 term separates hit accesses, miss tag-probes, data-array
    /// fills, and renewal lease updates — this is what differentiates the
    /// protocols in Figure 17: TC refills the data array on every expiry,
    /// while a G-TSC renewal only rewrites the lease fields.
    #[must_use]
    pub fn estimate(&self, stats: &SimStats) -> EnergyBreakdown {
        let p = self.params;
        let misses = stats.l1.misses();
        // Renewal responses update the tag/lease only; everything else
        // that missed eventually writes a full line into the data array.
        let renewal_updates = stats.l1.renewals.min(misses);
        let data_fills = misses - renewal_updates;
        let l1_nj = stats.l1.accesses as f64 * p.l1_access_nj
            + misses as f64 * p.l1_tag_nj
            + data_fills as f64 * p.l1_fill_nj
            + renewal_updates as f64 * p.l1_tag_nj;
        EnergyBreakdown {
            l1_nj,
            l2_nj: stats.l2.accesses as f64 * p.l2_access_nj,
            dram_nj: (stats.dram.reads + stats.dram.writes) as f64 * p.dram_burst_nj,
            noc_nj: stats.noc.flits as f64 * p.noc_flit_nj,
            core_nj: stats.sm.issued as f64 * p.issue_nj
                + stats.sm.active_cycles as f64 * p.sm_active_nj,
            static_nj: stats.cycles.0 as f64 * p.static_nj_per_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::{CacheStats, Cycle, DramStats, NocStats, SmStats};

    fn stats(l1: u64, l2: u64, dram: u64, flits: u64, issued: u64, cycles: u64) -> SimStats {
        SimStats {
            cycles: Cycle(cycles),
            sm: SmStats {
                issued,
                active_cycles: cycles / 2,
                ..SmStats::default()
            },
            l1: CacheStats {
                accesses: l1,
                ..CacheStats::default()
            },
            l2: CacheStats {
                accesses: l2,
                ..CacheStats::default()
            },
            noc: NocStats {
                flits,
                ..NocStats::default()
            },
            dram: DramStats {
                reads: dram,
                ..DramStats::default()
            },
            ..SimStats::default()
        }
    }

    #[test]
    fn empty_run_is_static_only() {
        let m = EnergyModel::new(EnergyParams::default());
        let e = m.estimate(&stats(0, 0, 0, 0, 0, 100));
        assert_eq!(e.l1_nj + e.l2_nj + e.dram_nj + e.noc_nj, 0.0);
        assert!((e.static_nj - 3000.0).abs() < 1e-9);
        assert!(e.total_nj() > 0.0);
    }

    #[test]
    fn energy_is_monotone_in_events() {
        let m = EnergyModel::new(EnergyParams::default());
        let small = m.estimate(&stats(10, 10, 10, 10, 10, 100));
        let large = m.estimate(&stats(100, 100, 100, 100, 100, 100));
        assert!(large.total_nj() > small.total_nj());
        assert!(large.dram_nj > large.l1_nj, "DRAM dominates per event");
    }

    #[test]
    fn joule_conversion() {
        let m = EnergyModel::new(EnergyParams::default());
        let s = SimStats {
            cycles: Cycle(1_000_000_000),
            ..SimStats::default()
        };
        let e = m.estimate(&s);
        // 1e9 cycles × 30 nJ = 30 J.
        assert!((e.total_j() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn dram_heavy_runs_cost_more_than_cache_heavy() {
        let m = EnergyModel::new(EnergyParams::default());
        let cached = m.estimate(&stats(1000, 100, 0, 100, 100, 1000));
        let uncached = m.estimate(&stats(0, 1000, 1000, 5000, 100, 1000));
        assert!(uncached.total_nj() > cached.total_nj());
    }
}
