//! Kernel and warp-program representation.
//!
//! A workload is a [`Kernel`]: a grid of CTAs, each contributing a fixed
//! number of warps, each warp executing a [`WarpProgram`] — a straight
//! sequence of [`WarpOp`]s. This is a *memory-behaviour* representation
//! (the quantity that drives coherence studies), not a functional ISA:
//! arithmetic appears only as [`WarpOp::Compute`] delays.

use gtsc_types::{Addr, CtaId};

/// One warp-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpOp {
    /// A global load; one address per participating lane (divergent lanes
    /// simply contribute no address).
    Load(Vec<Addr>),
    /// A global store; one address per participating lane.
    Store(Vec<Addr>),
    /// A global atomic read-modify-write (e.g. `atomicMin`/`atomicOr`);
    /// one address per participating lane. Performed at the L2; the warp
    /// blocks until the old value returns.
    Atomic(Vec<Addr>),
    /// A compute burst occupying the warp for the given number of cycles.
    Compute(u32),
    /// A full memory fence: orders all earlier memory operations of this
    /// warp before all later ones (release + acquire combined). Under SC
    /// it is a no-op by construction.
    Fence,
    /// A release fence: all earlier *stores and atomics* of this warp must
    /// be globally performed before any later operation issues. The
    /// cheaper half used to publish data before a flag write.
    ReleaseFence,
    /// An acquire fence: all earlier *loads and atomics* of this warp must
    /// have returned before any later operation issues. Pairs with a flag
    /// read before consuming published data.
    AcquireFence,
    /// CTA-wide barrier: the warp waits until every warp of its CTA
    /// arrives.
    Barrier,
}

impl WarpOp {
    /// Convenience constructor: a fully coalesced load where all 32 lanes
    /// read consecutive 4-byte words starting at `base`.
    #[must_use]
    pub fn load_coalesced(base: Addr, lanes: usize) -> WarpOp {
        WarpOp::Load((0..lanes as u64).map(|i| base.offset(i * 4)).collect())
    }

    /// Convenience constructor: a fully coalesced store.
    #[must_use]
    pub fn store_coalesced(base: Addr, lanes: usize) -> WarpOp {
        WarpOp::Store((0..lanes as u64).map(|i| base.offset(i * 4)).collect())
    }

    /// Convenience constructor: an atomic where all lanes hit consecutive
    /// words starting at `base` (coalescing into one RMW transaction).
    #[must_use]
    pub fn atomic_coalesced(base: Addr, lanes: usize) -> WarpOp {
        WarpOp::Atomic((0..lanes as u64).map(|i| base.offset(i * 4)).collect())
    }

    /// Whether this op is a load, store, or atomic.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, WarpOp::Load(_) | WarpOp::Store(_) | WarpOp::Atomic(_))
    }
}

/// The instruction stream of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpProgram(pub Vec<WarpOp>);

impl WarpProgram {
    /// An empty program (the warp retires immediately).
    #[must_use]
    pub fn new() -> Self {
        WarpProgram(Vec::new())
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the program has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<WarpOp> for WarpProgram {
    fn from_iter<T: IntoIterator<Item = WarpOp>>(iter: T) -> Self {
        WarpProgram(iter.into_iter().collect())
    }
}

/// A GPU kernel: a grid of CTAs, each of `warps_per_cta` warps.
///
/// Implementations must be deterministic: `program(cta, w)` is called once
/// per warp when the CTA is dispatched to an SM.
pub trait Kernel {
    /// Human-readable kernel name (used in experiment output).
    fn name(&self) -> &str;

    /// CTAs in the grid.
    fn n_ctas(&self) -> usize;

    /// Warps per CTA.
    fn warps_per_cta(&self) -> usize;

    /// The instruction stream of warp `warp_in_cta` of CTA `cta`.
    fn program(&self, cta: CtaId, warp_in_cta: usize) -> WarpProgram;
}

/// A kernel described by an explicit table of programs — handy for tests
/// and litmus workloads.
///
/// # Examples
///
/// ```
/// use gtsc_gpu::{Kernel, VecKernel, WarpOp, WarpProgram};
/// use gtsc_types::{Addr, CtaId};
///
/// // Two CTAs of one warp each: a message-passing litmus pair.
/// let k = VecKernel::new(
///     "mp",
///     1,
///     vec![
///         vec![WarpProgram(vec![
///             WarpOp::store_coalesced(Addr(0), 32),
///             WarpOp::Fence,
///             WarpOp::store_coalesced(Addr(128), 32),
///         ])],
///         vec![WarpProgram(vec![
///             WarpOp::load_coalesced(Addr(128), 32),
///             WarpOp::Fence,
///             WarpOp::load_coalesced(Addr(0), 32),
///         ])],
///     ],
/// );
/// assert_eq!(k.n_ctas(), 2);
/// assert_eq!(k.program(CtaId(0), 0).len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct VecKernel {
    name: String,
    warps_per_cta: usize,
    ctas: Vec<Vec<WarpProgram>>,
}

impl VecKernel {
    /// Builds a kernel from explicit per-CTA, per-warp programs.
    ///
    /// # Panics
    ///
    /// Panics if any CTA has a different number of warp programs than
    /// `warps_per_cta`.
    #[must_use]
    pub fn new(name: &str, warps_per_cta: usize, ctas: Vec<Vec<WarpProgram>>) -> Self {
        assert!(
            ctas.iter().all(|c| c.len() == warps_per_cta),
            "every CTA must have exactly warps_per_cta programs"
        );
        VecKernel {
            name: name.to_owned(),
            warps_per_cta,
            ctas,
        }
    }
}

impl Kernel for VecKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_ctas(&self) -> usize {
        self.ctas.len()
    }

    fn warps_per_cta(&self) -> usize {
        self.warps_per_cta
    }

    fn program(&self, cta: CtaId, warp_in_cta: usize) -> WarpProgram {
        self.ctas[cta.0 as usize][warp_in_cta].clone()
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl Snap for WarpOp {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            WarpOp::Load(a) => {
                w.u8(0);
                a.save(w);
            }
            WarpOp::Store(a) => {
                w.u8(1);
                a.save(w);
            }
            WarpOp::Atomic(a) => {
                w.u8(2);
                a.save(w);
            }
            WarpOp::Compute(c) => {
                w.u8(3);
                c.save(w);
            }
            WarpOp::Fence => w.u8(4),
            WarpOp::ReleaseFence => w.u8(5),
            WarpOp::AcquireFence => w.u8(6),
            WarpOp::Barrier => w.u8(7),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(WarpOp::Load(Snap::load(r)?)),
            1 => Ok(WarpOp::Store(Snap::load(r)?)),
            2 => Ok(WarpOp::Atomic(Snap::load(r)?)),
            3 => Ok(WarpOp::Compute(Snap::load(r)?)),
            4 => Ok(WarpOp::Fence),
            5 => Ok(WarpOp::ReleaseFence),
            6 => Ok(WarpOp::AcquireFence),
            7 => Ok(WarpOp::Barrier),
            other => Err(SnapshotError::Malformed {
                context: format!("WarpOp tag {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_constructors_touch_consecutive_words() {
        let WarpOp::Load(addrs) = WarpOp::load_coalesced(Addr(256), 32) else {
            panic!()
        };
        assert_eq!(addrs.len(), 32);
        assert_eq!(addrs[0], Addr(256));
        assert_eq!(addrs[31], Addr(256 + 31 * 4));
        assert!(WarpOp::load_coalesced(Addr(0), 4).is_memory());
        assert!(!WarpOp::Compute(3).is_memory());
    }

    #[test]
    fn warp_program_collects() {
        let p: WarpProgram = (0..3).map(|_| WarpOp::Compute(1)).collect();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(WarpProgram::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "exactly warps_per_cta")]
    fn vec_kernel_validates_shape() {
        let _ = VecKernel::new("bad", 2, vec![vec![WarpProgram::new()]]);
    }
}
