//! The memory-access coalescing unit.
//!
//! Accesses by the lanes of a warp are merged into the minimum number of
//! block-granular transactions (Section II-A): lanes touching the same
//! cache block produce a single access. Order follows first touch, which
//! keeps the generated traffic deterministic.

use gtsc_types::{Addr, BlockAddr};

/// Coalesces per-lane byte addresses into unique cache blocks
/// (first-touch order). `block_shift` is `log2(block_size)`.
///
/// # Examples
///
/// ```
/// use gtsc_gpu::coalesce;
/// use gtsc_types::{Addr, BlockAddr};
///
/// // 32 consecutive words (128 B) in one 128-B block: one transaction.
/// let addrs: Vec<Addr> = (0..32).map(|i| Addr(i * 4)).collect();
/// assert_eq!(coalesce(&addrs, 7), vec![BlockAddr(0)]);
///
/// // Strided by 128 B: fully divergent, one transaction per lane.
/// let addrs: Vec<Addr> = (0..4).map(|i| Addr(i * 128)).collect();
/// assert_eq!(coalesce(&addrs, 7).len(), 4);
/// ```
#[must_use]
pub fn coalesce(addrs: &[Addr], block_shift: u32) -> Vec<BlockAddr> {
    let mut out: Vec<BlockAddr> = Vec::new();
    for a in addrs {
        let b = BlockAddr(a.0 >> block_shift);
        if !out.contains(&b) {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_coalesces_to_nothing() {
        assert!(coalesce(&[], 7).is_empty());
    }

    #[test]
    fn unaligned_warp_spans_two_blocks() {
        // 32 words starting 64 bytes into a block: straddles two lines.
        let addrs: Vec<Addr> = (0..32).map(|i| Addr(64 + i * 4)).collect();
        let blocks = coalesce(&addrs, 7);
        assert_eq!(blocks, vec![BlockAddr(0), BlockAddr(1)]);
    }

    #[test]
    fn first_touch_order_is_preserved() {
        let addrs = [Addr(300), Addr(10), Addr(300), Addr(200)];
        assert_eq!(
            coalesce(&addrs, 7),
            vec![BlockAddr(2), BlockAddr(0), BlockAddr(1)]
        );
    }

    proptest! {
        /// Output blocks are unique and every input lane is covered.
        #[test]
        fn unique_and_covering(addrs in proptest::collection::vec(0u64..1_000_000, 0..64)) {
            let addrs: Vec<Addr> = addrs.into_iter().map(Addr).collect();
            let blocks = coalesce(&addrs, 7);
            // Unique.
            let mut sorted: Vec<_> = blocks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), blocks.len());
            // Covering.
            for a in &addrs {
                prop_assert!(blocks.contains(&BlockAddr(a.0 >> 7)));
            }
            // Never more transactions than lanes.
            prop_assert!(blocks.len() <= addrs.len().max(1));
        }
    }
}
