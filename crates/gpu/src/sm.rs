//! The Streaming Multiprocessor model: warp slots, a round-robin warp
//! scheduler, the LDST path into the private cache, CTA barriers, and the
//! consistency-model issue rules.

use std::collections::{HashMap, VecDeque};

use gtsc_protocol::{AccessId, AccessKind, Completion, L1Controller, L1Outcome, MemAccess};
use gtsc_trace::{CloseReason, EventKind, SpanTracker, Tracer};
use gtsc_types::{
    BlockAddr, ConsistencyModel, CtaId, Cycle, CycleReason, SmId, SmStats, SpanId, StallKind,
    WarpId, WarpScheduler,
};

use crate::coalesce::coalesce;
use crate::kernel::{WarpOp, WarpProgram};

/// Construction parameters for [`Sm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmParams {
    /// This SM's identifier.
    pub id: SmId,
    /// Warp slots (paper: 48).
    pub n_warp_slots: usize,
    /// `log2(block size)` used by the coalescer.
    pub block_shift: u32,
    /// SC or RC issue rules.
    pub consistency: ConsistencyModel,
    /// Outstanding-access window per warp under RC.
    pub max_outstanding_per_warp: usize,
    /// Maximum resident CTAs.
    pub max_ctas: usize,
    /// Scheduler issue slots per cycle.
    pub issue_width: usize,
    /// Warp scheduling policy.
    pub scheduler: WarpScheduler,
}

impl Default for SmParams {
    fn default() -> Self {
        SmParams {
            id: SmId(0),
            n_warp_slots: 4,
            block_shift: 7,
            consistency: ConsistencyModel::Rc,
            max_outstanding_per_warp: 8,
            max_ctas: 4,
            issue_width: 1,
            scheduler: WarpScheduler::RoundRobin,
        }
    }
}

#[derive(Debug)]
struct WarpSlot {
    active: bool,
    cta_slot: usize,
    ops: VecDeque<WarpOp>,
    /// Remaining coalesced accesses of the in-flight memory instruction.
    mem_blocks: VecDeque<BlockAddr>,
    mem_kind: AccessKind,
    outstanding: u32,
    /// Outstanding stores + atomics (release-fence gate).
    outstanding_writes: u32,
    /// Outstanding loads + atomics (acquire-fence gate).
    outstanding_reads: u32,
    compute_until: Cycle,
    at_barrier: bool,
    /// An atomic instruction is in flight: the warp blocks until its old
    /// value returns (its result feeds dependent instructions).
    atomic_pending: bool,
    issued_at: Cycle,
    /// Dispatch order (lower = older), used by the GTO scheduler.
    age: u64,
}

impl WarpSlot {
    fn empty() -> Self {
        WarpSlot {
            active: false,
            cta_slot: 0,
            ops: VecDeque::new(),
            mem_blocks: VecDeque::new(),
            mem_kind: AccessKind::Load,
            outstanding: 0,
            outstanding_writes: 0,
            outstanding_reads: 0,
            compute_until: Cycle(0),
            at_barrier: false,
            atomic_pending: false,
            issued_at: Cycle(u64::MAX),
            age: u64::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CtaSlot {
    warps_total: usize,
    warps_done: usize,
    at_barrier: usize,
    occupied: bool,
}

/// One Streaming Multiprocessor driving a pluggable L1 controller.
///
/// Per cycle the owning simulator calls [`Sm::cycle`] (issue), drains the
/// L1's outgoing requests, and feeds L1 completions back through
/// [`Sm::on_completion`]. CTAs are dispatched with [`Sm::assign_cta`] when
/// [`Sm::can_accept_cta`] allows.
pub struct Sm {
    p: SmParams,
    warps: Vec<WarpSlot>,
    ctas: Vec<CtaSlot>,
    l1: Box<dyn L1Controller>,
    rr_cursor: usize,
    /// Warp the GTO scheduler is currently greedy on.
    greedy_warp: Option<usize>,
    next_age: u64,
    /// Census of `warps` slots with `active == true`, maintained at the
    /// dispatch/retire sites (and recomputed on restore) so the
    /// per-cycle accounting path never scans the warp table.
    active_warps: usize,
    next_access: u64,
    /// Issue time of each in-flight access (latency accounting).
    issue_time: HashMap<AccessId, Cycle>,
    stats: SmStats,
    tracer: Tracer,
    /// Causal-span sampling: every `1/span_rate`-th minted access (a pure
    /// function of `span_seed` and the snapshotted access ordinal, so the
    /// sampled set is identical across a snapshot/restore boundary) gets a
    /// [`SpanId`] and an open span in `spans`. Volatile observability
    /// state — like the tracer, none of this is snapshotted.
    span_rate: u64,
    span_seed: u64,
    spans: SpanTracker,
    /// Span of each in-flight sampled access (close-on-completion).
    span_of: HashMap<AccessId, SpanId>,
    /// Whether the most recent [`Sm::cycle`] call issued anything
    /// (consumed by the simulator's cycle-reason accounting).
    issued_last_cycle: bool,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.p.id)
            .field("resident_warps", &self.resident_warps())
            .finish_non_exhaustive()
    }
}

impl Sm {
    /// Creates an SM with an empty pipeline in front of `l1`.
    #[must_use]
    pub fn new(p: SmParams, l1: Box<dyn L1Controller>) -> Self {
        Sm {
            warps: (0..p.n_warp_slots).map(|_| WarpSlot::empty()).collect(),
            ctas: vec![
                CtaSlot {
                    warps_total: 0,
                    warps_done: 0,
                    at_barrier: 0,
                    occupied: false
                };
                p.max_ctas
            ],
            l1,
            rr_cursor: 0,
            greedy_warp: None,
            next_age: 0,
            active_warps: 0,
            next_access: 0,
            issue_time: HashMap::new(),
            stats: SmStats::default(),
            tracer: Tracer::disabled(),
            span_rate: 0,
            span_seed: 0,
            spans: SpanTracker::disabled(),
            span_of: HashMap::new(),
            issued_last_cycle: false,
            p,
        }
    }

    /// Installs the shared span tracker and the sampling parameters
    /// (`rate` of 0 disables sampling; otherwise every access whose
    /// seeded hash lands on `0 mod rate` is traced end-to-end).
    pub fn set_span_sampling(&mut self, rate: u64, seed: u64, spans: SpanTracker) {
        self.span_rate = rate;
        self.span_seed = seed;
        self.spans = spans;
    }

    /// Whether the most recent [`Sm::cycle`] call issued at least one
    /// micro-op (feeds the simulator's per-cycle reason accounting).
    #[must_use]
    pub fn issued_last_cycle(&self) -> bool {
        self.issued_last_cycle
    }

    /// Attributes one elapsed cycle to `reason` in this SM's stats.
    pub fn account_cycle(&mut self, reason: CycleReason) {
        self.stats.cycle_buckets.record(reason);
    }

    /// Installs a configured tracer (the pipeline's warp-issue and
    /// warp-stall events; the L1 carries its own).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The SM pipeline's tracer (disabled unless the simulator installed
    /// one).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// This SM's identifier.
    #[must_use]
    pub fn id(&self) -> SmId {
        self.p.id
    }

    /// Shared access to the private cache controller.
    #[must_use]
    pub fn l1(&self) -> &dyn L1Controller {
        self.l1.as_ref()
    }

    /// Exclusive access to the private cache controller (the simulator
    /// drains requests and delivers responses through this).
    pub fn l1_mut(&mut self) -> &mut dyn L1Controller {
        self.l1.as_mut()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// Number of currently resident (unretired) warps.
    #[must_use]
    pub fn resident_warps(&self) -> usize {
        self.warps.iter().filter(|w| w.active).count()
    }

    /// Whether any warp is resident — the short-circuit form of
    /// [`Sm::resident_warps`]` > 0` for the per-cycle accounting path.
    #[must_use]
    pub fn has_resident_warps(&self) -> bool {
        self.active_warps > 0
    }

    /// Whether a CTA of `warps` warps can be dispatched here now.
    #[must_use]
    pub fn can_accept_cta(&self, warps: usize) -> bool {
        let free_warps = self.warps.iter().filter(|w| !w.active).count();
        let free_cta = self.ctas.iter().any(|c| !c.occupied);
        free_warps >= warps && free_cta
    }

    /// Dispatches a CTA onto this SM.
    ///
    /// # Panics
    ///
    /// Panics if capacity is insufficient (check
    /// [`Sm::can_accept_cta`] first).
    pub fn assign_cta(&mut self, cta: CtaId, programs: Vec<WarpProgram>) {
        assert!(
            self.can_accept_cta(programs.len()),
            "SM lacks capacity for CTA {cta}"
        );
        let cta_slot = self
            .ctas
            .iter()
            .position(|c| !c.occupied)
            .expect("capacity checked");
        let _ = cta; // identity is only needed for the capacity panic message
        self.ctas[cta_slot] = CtaSlot {
            warps_total: programs.len(),
            warps_done: 0,
            at_barrier: 0,
            occupied: true,
        };
        let mut programs = programs.into_iter();
        for slot in self.warps.iter_mut() {
            if !slot.active {
                let Some(prog) = programs.next() else { break };
                self.next_age += 1;
                *slot = WarpSlot {
                    active: true,
                    cta_slot,
                    ops: prog.0.into(),
                    age: self.next_age,
                    ..WarpSlot::empty()
                };
                self.active_warps += 1;
            }
        }
        assert!(programs.next().is_none(), "capacity checked");
    }

    /// Whether every dispatched warp has retired and the L1 is drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.resident_warps() == 0 && self.l1.is_idle()
    }

    /// Delivers a completed access (decrements the issuing warp's
    /// outstanding count).
    pub fn on_completion(&mut self, c: &Completion) {
        self.on_completion_at(c, None);
    }

    /// Like [`Sm::on_completion`], additionally recording the access's
    /// issue→completion latency in the stats histogram.
    pub fn on_completion_at(&mut self, c: &Completion, now: Option<Cycle>) {
        let t0 = self.issue_time.remove(&c.id);
        if let (Some(t0), Some(now)) = (t0, now) {
            self.stats.mem_latency.record(now - t0);
        }
        // The emptiness check keeps the spans-off hot path free of a
        // per-completion hash lookup.
        if !self.span_of.is_empty() {
            if let Some(span) = self.span_of.remove(&c.id) {
                // `now` is always present when driven by the simulator;
                // fall back to the issue cycle so the span still closes
                // in direct-drive unit tests.
                if let Some(at) = now.or(t0) {
                    self.spans.close(span, CloseReason::Completed, at);
                }
            }
        }
        let slot = &mut self.warps[c.warp.0 as usize];
        slot.outstanding = slot.outstanding.saturating_sub(1);
        match c.kind {
            AccessKind::Load => slot.outstanding_reads = slot.outstanding_reads.saturating_sub(1),
            AccessKind::Store => {
                slot.outstanding_writes = slot.outstanding_writes.saturating_sub(1);
            }
            AccessKind::Atomic => {
                slot.outstanding_reads = slot.outstanding_reads.saturating_sub(1);
                slot.outstanding_writes = slot.outstanding_writes.saturating_sub(1);
            }
        }
        if slot.outstanding == 0 {
            slot.atomic_pending = false;
        }
    }

    /// Runs one scheduler cycle; returns completions produced by L1 hits.
    pub fn cycle(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        self.retire_finished();
        let mut any_issued = false;
        for _ in 0..self.p.issue_width {
            if !self.issue_one(now, &mut done) {
                break;
            }
            any_issued = true;
        }
        self.account_stalls(now);
        self.issued_last_cycle = any_issued;
        if self.resident_warps() > 0 {
            if any_issued {
                self.stats.active_cycles += 1;
            } else {
                self.stats.idle_cycles += 1;
            }
        }
        done
    }

    fn retire_finished(&mut self) {
        for i in 0..self.warps.len() {
            let w = &self.warps[i];
            if w.active && w.ops.is_empty() && w.mem_blocks.is_empty() && w.outstanding == 0 {
                let cta_slot = w.cta_slot;
                self.warps[i].active = false;
                self.active_warps -= 1;
                let cta = &mut self.ctas[cta_slot];
                cta.warps_done += 1;
                if cta.warps_done == cta.warps_total {
                    cta.occupied = false;
                }
            }
        }
    }

    /// Finds one issuable warp per the scheduling policy and issues a
    /// micro-op. Returns whether anything issued.
    fn issue_one(&mut self, now: Cycle, done: &mut Vec<Completion>) -> bool {
        match self.p.scheduler {
            WarpScheduler::RoundRobin => {
                let n = self.warps.len();
                for k in 0..n {
                    let i = (self.rr_cursor + k) % n;
                    if self.try_issue_warp(i, now, done) {
                        self.rr_cursor = (i + 1) % n;
                        return true;
                    }
                }
                false
            }
            WarpScheduler::Gto => {
                // Greedy: stick with the current warp while it issues.
                if let Some(i) = self.greedy_warp {
                    if self.warps[i].active && self.try_issue_warp(i, now, done) {
                        return true;
                    }
                }
                // Then-oldest: fall back to the oldest ready warp.
                let mut order: Vec<usize> = (0..self.warps.len())
                    .filter(|&i| self.warps[i].active)
                    .collect();
                order.sort_by_key(|&i| self.warps[i].age);
                for i in order {
                    if Some(i) != self.greedy_warp && self.try_issue_warp(i, now, done) {
                        self.greedy_warp = Some(i);
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Counts one issued instruction from warp slot `i` and traces it.
    fn note_issue(&mut self, i: usize, now: Cycle) {
        self.stats.issued += 1;
        self.tracer
            .record_with(now, || EventKind::WarpIssue { warp: i as u16 });
    }

    fn window_open(&self, slot: &WarpSlot) -> bool {
        match self.p.consistency {
            // SC: memory instructions are blocking.
            ConsistencyModel::Sc => slot.outstanding == 0,
            ConsistencyModel::Rc => (slot.outstanding as usize) < self.p.max_outstanding_per_warp,
        }
    }

    fn try_issue_warp(&mut self, i: usize, now: Cycle, done: &mut Vec<Completion>) -> bool {
        if !self.warps[i].active || self.warps[i].compute_until > now || self.warps[i].at_barrier {
            return self.warps[i].at_barrier && self.try_release_barrier(i);
        }
        // Continue a partially issued memory instruction.
        if !self.warps[i].mem_blocks.is_empty() {
            return self.issue_mem_access(i, now, done);
        }
        // An in-flight atomic blocks the warp: its result is needed.
        if self.warps[i].atomic_pending {
            return false;
        }
        let front_is_mem = matches!(
            self.warps[i].ops.front(),
            Some(WarpOp::Load(_) | WarpOp::Store(_) | WarpOp::Atomic(_))
        );
        match self.warps[i].ops.front() {
            None => false,
            Some(WarpOp::Compute(c)) => {
                if self.p.consistency == ConsistencyModel::Sc && self.warps[i].outstanding > 0 {
                    return false; // SC: the warp is blocked on memory
                }
                let c = *c;
                self.warps[i].ops.pop_front();
                self.warps[i].compute_until = now + u64::from(c);
                self.warps[i].issued_at = now;
                self.note_issue(i, now);
                true
            }
            Some(WarpOp::Load(_) | WarpOp::Store(_) | WarpOp::Atomic(_)) if front_is_mem => {
                if !self.window_open(&self.warps[i]) {
                    return false;
                }
                let op = self.warps[i].ops.pop_front().expect("front checked");
                let (kind, addrs) = match op {
                    WarpOp::Load(a) => (AccessKind::Load, a),
                    WarpOp::Store(a) => (AccessKind::Store, a),
                    WarpOp::Atomic(a) => (AccessKind::Atomic, a),
                    _ => unreachable!("matched memory op"),
                };
                if kind == AccessKind::Atomic {
                    self.warps[i].atomic_pending = true;
                }
                self.warps[i].mem_kind = kind;
                self.warps[i].mem_blocks = coalesce(&addrs, self.p.block_shift).into();
                self.warps[i].issued_at = now;
                self.note_issue(i, now);
                self.stats.mem_issued += 1;
                if self.warps[i].mem_blocks.is_empty() {
                    return true; // fully divergent-empty instruction
                }
                self.issue_mem_access(i, now, done);
                true
            }
            Some(WarpOp::Fence)
                if self.warps[i].outstanding == 0 && self.l1.fence_ready(WarpId(i as u16), now) => {
                    self.warps[i].ops.pop_front();
                    self.warps[i].issued_at = now;
                    self.note_issue(i, now);
                    true
                }
            Some(WarpOp::ReleaseFence)
                // Only prior stores/atomics must be performed (and, for
                // TC-Weak, globally visible per GWCT).
                if self.warps[i].outstanding_writes == 0
                    && self.l1.fence_ready(WarpId(i as u16), now)
                => {
                    self.warps[i].ops.pop_front();
                    self.warps[i].issued_at = now;
                    self.note_issue(i, now);
                    true
                }
            Some(WarpOp::AcquireFence)
                // Only prior loads/atomics must have returned.
                if self.warps[i].outstanding_reads == 0 => {
                    self.warps[i].ops.pop_front();
                    self.warps[i].issued_at = now;
                    self.note_issue(i, now);
                    true
                }
            Some(WarpOp::Barrier) => {
                if self.warps[i].outstanding > 0 {
                    return false; // barrier implies memory visibility
                }
                self.warps[i].at_barrier = true;
                self.warps[i].issued_at = now;
                self.ctas[self.warps[i].cta_slot].at_barrier += 1;
                self.note_issue(i, now);
                self.try_release_barrier(i);
                true
            }
            Some(_) => false,
        }
    }

    /// Releases the CTA barrier once every live warp of the CTA arrived.
    fn try_release_barrier(&mut self, i: usize) -> bool {
        let cta_slot = self.warps[i].cta_slot;
        let cta = self.ctas[cta_slot];
        let live = cta.warps_total - cta.warps_done;
        if cta.at_barrier < live {
            return false;
        }
        for w in self.warps.iter_mut() {
            if w.active && w.cta_slot == cta_slot && w.at_barrier {
                w.at_barrier = false;
                w.ops.pop_front(); // consume the Barrier op
            }
        }
        self.ctas[cta_slot].at_barrier = 0;
        true
    }

    fn issue_mem_access(&mut self, i: usize, now: Cycle, done: &mut Vec<Completion>) -> bool {
        if !self.warps[i].mem_blocks.is_empty()
            && self.p.consistency == ConsistencyModel::Rc
            && (self.warps[i].outstanding as usize) >= self.p.max_outstanding_per_warp
        {
            return false;
        }
        let Some(&block) = self.warps[i].mem_blocks.front() else {
            return false;
        };
        self.next_access += 1;
        // Sampling decides at mint time from the snapshotted ordinal, so
        // the sampled set is deterministic per seed and restore-safe.
        // `next_access` was pre-incremented: the ordinal is never zero,
        // so a sampled SpanId can never collide with `SpanId::NONE`.
        let span_material = SpanId::new(self.p.id, self.next_access);
        let span = if SpanTracker::sampled(self.span_rate, self.span_seed, span_material.0) {
            span_material
        } else {
            SpanId::NONE
        };
        let acc = MemAccess {
            id: AccessId(self.next_access),
            warp: WarpId(i as u16),
            kind: self.warps[i].mem_kind,
            block,
            span,
        };
        match self.l1.access(acc, now) {
            L1Outcome::Hit(c) => {
                self.warps[i].mem_blocks.pop_front();
                self.warps[i].issued_at = now;
                self.stats.mem_latency.record(1); // L1 hit latency
                self.spans.open(span, now);
                self.spans.close(span, CloseReason::Completed, now);
                done.push(c);
                true
            }
            L1Outcome::Queued => {
                self.warps[i].mem_blocks.pop_front();
                self.issue_time.insert(acc.id, now);
                if !span.is_none() {
                    self.spans.open(span, now);
                    self.span_of.insert(acc.id, span);
                }
                self.warps[i].outstanding += 1;
                match self.warps[i].mem_kind {
                    AccessKind::Load => self.warps[i].outstanding_reads += 1,
                    AccessKind::Store => self.warps[i].outstanding_writes += 1,
                    AccessKind::Atomic => {
                        self.warps[i].outstanding_reads += 1;
                        self.warps[i].outstanding_writes += 1;
                    }
                }
                self.warps[i].issued_at = now;
                true
            }
            L1Outcome::Reject => {
                self.stats.record_stall(StallKind::Structural);
                false
            }
        }
    }

    /// Why warp slot `i` cannot issue at `now`, or `None` if it is idle,
    /// freshly issued, or still computing.
    fn stall_reason(&self, i: usize, now: Cycle) -> Option<StallKind> {
        let w = &self.warps[i];
        if !w.active || w.issued_at == now || w.compute_until > now {
            return None;
        }
        if w.at_barrier {
            Some(StallKind::Barrier)
        } else if !w.mem_blocks.is_empty() {
            Some(StallKind::Memory)
        } else {
            match w.ops.front() {
                _ if w.atomic_pending => Some(StallKind::Memory),
                Some(WarpOp::Fence | WarpOp::ReleaseFence | WarpOp::AcquireFence) => {
                    Some(StallKind::Fence)
                }
                Some(WarpOp::Load(_) | WarpOp::Store(_) | WarpOp::Atomic(_))
                    if !self.window_open(w) =>
                {
                    Some(StallKind::Memory)
                }
                Some(WarpOp::Compute(_))
                    if self.p.consistency == ConsistencyModel::Sc && w.outstanding > 0 =>
                {
                    Some(StallKind::Memory)
                }
                None if w.outstanding > 0 => Some(StallKind::Memory),
                _ => None,
            }
        }
    }

    /// Per-cycle warp-stall classification (the Figure 13 metric counts
    /// `Memory` warp-cycles).
    fn account_stalls(&mut self, now: Cycle) {
        for i in 0..self.warps.len() {
            if let Some(k) = self.stall_reason(i, now) {
                self.stats.record_stall(k);
                self.tracer.record_with(now, || EventKind::WarpStall {
                    warp: i as u16,
                    kind: k,
                });
            }
        }
    }

    /// Instructions issued so far (the watchdog's cheap progress signal).
    #[must_use]
    pub fn issued_count(&self) -> u64 {
        self.stats.issued
    }

    /// Snapshot of every resident warp that cannot issue at `now`, with
    /// its stall classification and outstanding-access state. Used by the
    /// simulator's forward-progress watchdog to explain a hang.
    #[must_use]
    pub fn stalled_warps(&self, now: Cycle) -> Vec<WarpStallInfo> {
        (0..self.warps.len())
            .filter_map(|i| {
                let stall = self.stall_reason(i, now)?;
                let w = &self.warps[i];
                Some(WarpStallInfo {
                    warp: WarpId(i as u16),
                    stall,
                    outstanding: w.outstanding,
                    mem_blocks_pending: w.mem_blocks.len(),
                    ops_remaining: w.ops.len(),
                })
            })
            .collect()
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

gtsc_types::snap_fields!(WarpSlot {
    active,
    cta_slot,
    ops,
    mem_blocks,
    mem_kind,
    outstanding,
    outstanding_writes,
    outstanding_reads,
    compute_until,
    at_barrier,
    atomic_pending,
    issued_at,
    age,
});

gtsc_types::snap_fields!(CtaSlot {
    warps_total,
    warps_done,
    at_barrier,
    occupied,
});

impl Sm {
    /// Serializes the pipeline's dynamic state — warp and CTA slots,
    /// scheduler cursors, access-id counter, latency bookkeeping, and
    /// counters — followed by the L1 controller's state via its trait
    /// hook. `SmParams` and the tracer are config-derived and come from
    /// the SM being restored into.
    ///
    /// # Errors
    ///
    /// [`gtsc_types::SnapshotError::Unsupported`] if the installed L1
    /// controller does not implement checkpointing.
    pub fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        self.warps.save(w);
        self.ctas.save(w);
        self.rr_cursor.save(w);
        self.greedy_warp.save(w);
        self.next_age.save(w);
        self.next_access.save(w);
        self.issue_time.save(w);
        self.stats.save(w);
        self.l1.save_state(w)
    }

    /// Restores state saved by [`Sm::save_state`].
    ///
    /// # Errors
    ///
    /// [`gtsc_types::SnapshotError::Mismatch`] if the slot geometry
    /// differs; `Unsupported` if the L1 cannot checkpoint; any decoding
    /// error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let warps: Vec<WarpSlot> = Snap::load(r)?;
        let ctas: Vec<CtaSlot> = Snap::load(r)?;
        if warps.len() != self.warps.len() || ctas.len() != self.ctas.len() {
            return Err(SnapshotError::Mismatch {
                what: "SM warp/CTA slot geometry".into(),
            });
        }
        self.warps = warps;
        self.active_warps = self.warps.iter().filter(|w| w.active).count();
        self.ctas = ctas;
        self.rr_cursor = Snap::load(r)?;
        self.greedy_warp = Snap::load(r)?;
        self.next_age = Snap::load(r)?;
        self.next_access = Snap::load(r)?;
        self.issue_time = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.l1.load_state(r)
    }
}

/// One stalled warp in a forward-progress diagnosis (see
/// [`Sm::stalled_warps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpStallInfo {
    /// Warp slot within its SM.
    pub warp: WarpId,
    /// Why the warp cannot issue.
    pub stall: StallKind,
    /// Accesses in flight for this warp.
    pub outstanding: u32,
    /// Coalesced blocks of the current memory instruction not yet issued.
    pub mem_blocks_pending: usize,
    /// Instructions left in the warp's program.
    pub ops_remaining: usize,
}

impl std::fmt::Display for WarpStallInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "warp {} stalled on {:?} (outstanding={}, blocks_pending={}, ops_left={})",
            self.warp.0, self.stall, self.outstanding, self.mem_blocks_pending, self.ops_remaining
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::{L1ToL2, L2ToL1};
    use gtsc_types::{Addr, CacheStats, Version};
    use std::cell::RefCell;
    use std::collections::VecDeque as Dq;
    use std::rc::Rc;

    /// A scripted L1: queues every access; the test completes them by
    /// calling `pump`.
    struct TestL1 {
        queued: Rc<RefCell<Dq<MemAccess>>>,
        fence_ready_at: Cycle,
    }

    impl TestL1 {
        fn new() -> (Self, Rc<RefCell<Dq<MemAccess>>>) {
            let q = Rc::new(RefCell::new(Dq::new()));
            (
                TestL1 {
                    queued: q.clone(),
                    fence_ready_at: Cycle(0),
                },
                q,
            )
        }
    }

    impl L1Controller for TestL1 {
        fn access(&mut self, acc: MemAccess, _now: Cycle) -> L1Outcome {
            self.queued.borrow_mut().push_back(acc);
            L1Outcome::Queued
        }
        fn on_response(&mut self, _msg: L2ToL1, _now: Cycle) -> Vec<Completion> {
            Vec::new()
        }
        fn take_request(&mut self) -> Option<L1ToL2> {
            None
        }
        fn tick(&mut self, _now: Cycle) -> Vec<Completion> {
            Vec::new()
        }
        fn fence_ready(&self, _warp: WarpId, now: Cycle) -> bool {
            now >= self.fence_ready_at
        }
        fn flush(&mut self) {}
        fn is_idle(&self) -> bool {
            true
        }
        fn stats(&self) -> CacheStats {
            CacheStats::default()
        }
    }

    fn completion_for(acc: &MemAccess) -> Completion {
        Completion {
            id: acc.id,
            warp: acc.warp,
            kind: acc.kind,
            block: acc.block,
            version: Version(1),
            ts: None,
            epoch: 0,
            prev: None,
        }
    }

    fn one_warp_kernel(ops: Vec<WarpOp>) -> Vec<WarpProgram> {
        vec![WarpProgram(ops)]
    }

    #[test]
    fn cta_dispatch_and_retirement() {
        let (l1, _q) = TestL1::new();
        let mut sm = Sm::new(SmParams::default(), Box::new(l1));
        assert!(sm.can_accept_cta(2));
        sm.assign_cta(
            CtaId(0),
            vec![
                WarpProgram(vec![WarpOp::Compute(1)]),
                WarpProgram(vec![WarpOp::Compute(1)]),
            ],
        );
        assert_eq!(sm.resident_warps(), 2);
        for c in 0..10 {
            sm.cycle(Cycle(c));
        }
        assert_eq!(sm.resident_warps(), 0);
        assert!(sm.is_idle());
        assert_eq!(sm.stats().issued, 2);
    }

    #[test]
    fn sc_blocks_next_instruction_until_completion() {
        let (l1, q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Sc,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![
                WarpOp::load_coalesced(Addr(0), 32),
                WarpOp::Compute(1),
            ]),
        );
        sm.cycle(Cycle(0)); // issues the load
        assert_eq!(q.borrow().len(), 1);
        sm.cycle(Cycle(1)); // compute must NOT issue (outstanding load)
        assert_eq!(sm.stats().issued, 1);
        assert!(sm.stats().memory_stall_cycles > 0);
        // Complete the load; compute proceeds.
        let acc = q.borrow_mut().pop_front().unwrap();
        sm.on_completion(&completion_for(&acc));
        sm.cycle(Cycle(2));
        assert_eq!(sm.stats().issued, 2);
    }

    #[test]
    fn rc_overlaps_memory_and_compute() {
        let (l1, q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Rc,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![
                WarpOp::load_coalesced(Addr(0), 32),
                WarpOp::Compute(1),
            ]),
        );
        sm.cycle(Cycle(0)); // load
        sm.cycle(Cycle(1)); // compute issues despite outstanding load
        assert_eq!(sm.stats().issued, 2);
        assert_eq!(q.borrow().len(), 1);
    }

    #[test]
    fn rc_window_limits_outstanding() {
        let (l1, q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Rc,
            max_outstanding_per_warp: 2,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        let loads: Vec<WarpOp> = (0..4)
            .map(|i| WarpOp::load_coalesced(Addr(i * 128), 32))
            .collect();
        sm.assign_cta(CtaId(0), one_warp_kernel(loads));
        for c in 0..10 {
            sm.cycle(Cycle(c));
        }
        assert_eq!(q.borrow().len(), 2, "window of 2 outstanding accesses");
    }

    #[test]
    fn fence_waits_for_outstanding_and_protocol() {
        let (mut l1, q) = TestL1::new();
        l1.fence_ready_at = Cycle(100); // protocol rule (e.g. GWCT)
        let mut sm = Sm::new(SmParams::default(), Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![
                WarpOp::store_coalesced(Addr(0), 32),
                WarpOp::Fence,
                WarpOp::Compute(1),
            ]),
        );
        sm.cycle(Cycle(0)); // store
        sm.cycle(Cycle(1)); // fence blocked: outstanding store
        assert_eq!(sm.stats().issued, 1);
        let acc = q.borrow_mut().pop_front().unwrap();
        sm.on_completion(&completion_for(&acc));
        sm.cycle(Cycle(2)); // fence still blocked: protocol says not ready
        assert_eq!(sm.stats().issued, 1);
        assert!(sm.stats().fence_stall_cycles >= 2);
        sm.cycle(Cycle(100)); // ready now
        assert_eq!(sm.stats().issued, 2);
    }

    #[test]
    fn barrier_synchronizes_cta() {
        let (l1, _q) = TestL1::new();
        let mut sm = Sm::new(SmParams::default(), Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            vec![
                WarpProgram(vec![WarpOp::Barrier, WarpOp::Compute(1)]),
                WarpProgram(vec![
                    WarpOp::Compute(3),
                    WarpOp::Barrier,
                    WarpOp::Compute(1),
                ]),
            ],
        );
        // Warp 0 reaches the barrier immediately; warp 1 is computing.
        sm.cycle(Cycle(0));
        sm.cycle(Cycle(1));
        assert!(sm.stats().barrier_stall_cycles > 0 || sm.resident_warps() == 2);
        // Run forward: both pass the barrier and retire.
        for c in 2..20 {
            sm.cycle(Cycle(c));
        }
        assert_eq!(sm.resident_warps(), 0);
    }

    #[test]
    fn multi_block_instruction_issues_over_cycles() {
        let (l1, q) = TestL1::new();
        let mut sm = Sm::new(SmParams::default(), Box::new(l1));
        // 4 lanes strided by 128B: 4 blocks.
        let addrs: Vec<Addr> = (0..4).map(|i| Addr(i * 128)).collect();
        sm.assign_cta(CtaId(0), one_warp_kernel(vec![WarpOp::Load(addrs)]));
        sm.cycle(Cycle(0));
        assert_eq!(q.borrow().len(), 1, "one access per issue slot");
        sm.cycle(Cycle(1));
        sm.cycle(Cycle(2));
        sm.cycle(Cycle(3));
        assert_eq!(q.borrow().len(), 4);
        assert_eq!(sm.stats().mem_issued, 1, "one instruction");
    }

    #[test]
    fn atomic_blocks_warp_until_completion() {
        let (l1, q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Rc,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![
                WarpOp::atomic_coalesced(Addr(0), 32),
                WarpOp::Compute(1),
            ]),
        );
        sm.cycle(Cycle(0)); // atomic issues
        assert_eq!(q.borrow().len(), 1);
        assert_eq!(q.borrow()[0].kind, AccessKind::Atomic);
        // Even under RC, the compute may NOT issue: the atomic's result
        // is pending.
        sm.cycle(Cycle(1));
        sm.cycle(Cycle(2));
        assert_eq!(sm.stats().issued, 1);
        assert!(sm.stats().memory_stall_cycles >= 2);
        let acc = q.borrow_mut().pop_front().unwrap();
        sm.on_completion(&completion_for(&acc));
        sm.cycle(Cycle(3));
        assert_eq!(sm.stats().issued, 2);
    }

    #[test]
    fn gto_sticks_with_the_greedy_warp() {
        let (l1, _q) = TestL1::new();
        let p = SmParams {
            scheduler: gtsc_types::WarpScheduler::Gto,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            vec![
                WarpProgram(vec![
                    WarpOp::Compute(1),
                    WarpOp::Compute(1),
                    WarpOp::Compute(1),
                ]),
                WarpProgram(vec![
                    WarpOp::Compute(1),
                    WarpOp::Compute(1),
                    WarpOp::Compute(1),
                ]),
            ],
        );
        // With compute(1) ops a warp is ready again next cycle, so GTO
        // should retire warp 0 completely before touching warp 1.
        for c in 0..3 {
            sm.cycle(Cycle(c));
        }
        // After 3 cycles, exactly 3 instructions issued — all from the
        // greedy warp, which has now finished its program.
        assert_eq!(sm.stats().issued, 3);
        sm.cycle(Cycle(3));
        assert_eq!(sm.resident_warps(), 1, "warp 0 retired first under GTO");
    }

    #[test]
    fn round_robin_interleaves_warps() {
        let (l1, _q) = TestL1::new();
        let p = SmParams {
            scheduler: gtsc_types::WarpScheduler::RoundRobin,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            vec![
                WarpProgram(vec![WarpOp::Compute(1), WarpOp::Compute(1)]),
                WarpProgram(vec![WarpOp::Compute(1), WarpOp::Compute(1)]),
            ],
        );
        for c in 0..4 {
            sm.cycle(Cycle(c));
        }
        // Both warps retire at (nearly) the same time under RR.
        sm.cycle(Cycle(4));
        assert_eq!(sm.resident_warps(), 0);
    }

    #[test]
    fn release_fence_waits_only_for_stores() {
        let (l1, q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Rc,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![
                WarpOp::load_coalesced(Addr(0), 32),
                WarpOp::store_coalesced(Addr(128), 32),
                WarpOp::ReleaseFence,
                WarpOp::Compute(1),
            ]),
        );
        sm.cycle(Cycle(0)); // load
        sm.cycle(Cycle(1)); // store
        sm.cycle(Cycle(2)); // fence blocked: store outstanding
        assert_eq!(sm.stats().issued, 2);
        // Complete only the STORE; the load stays outstanding.
        let store_acc = {
            let mut qq = q.borrow_mut();
            let pos = qq.iter().position(|a| a.kind == AccessKind::Store).unwrap();
            qq.remove(pos).unwrap()
        };
        sm.on_completion(&completion_for(&store_acc));
        sm.cycle(Cycle(3)); // release fence passes despite pending load
        sm.cycle(Cycle(4)); // compute issues
        assert_eq!(sm.stats().issued, 4);
    }

    #[test]
    fn acquire_fence_waits_only_for_loads() {
        let (l1, q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Rc,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![
                WarpOp::store_coalesced(Addr(0), 32),
                WarpOp::load_coalesced(Addr(128), 32),
                WarpOp::AcquireFence,
                WarpOp::Compute(1),
            ]),
        );
        sm.cycle(Cycle(0));
        sm.cycle(Cycle(1));
        sm.cycle(Cycle(2)); // fence blocked: load outstanding
        assert_eq!(sm.stats().issued, 2);
        let load_acc = {
            let mut qq = q.borrow_mut();
            let pos = qq.iter().position(|a| a.kind == AccessKind::Load).unwrap();
            qq.remove(pos).unwrap()
        };
        sm.on_completion(&completion_for(&load_acc));
        sm.cycle(Cycle(3)); // acquire fence passes despite pending store
        sm.cycle(Cycle(4));
        assert_eq!(sm.stats().issued, 4);
    }

    #[test]
    fn stall_classification_counts_memory_waits() {
        let (l1, _q) = TestL1::new();
        let p = SmParams {
            consistency: ConsistencyModel::Sc,
            ..SmParams::default()
        };
        let mut sm = Sm::new(p, Box::new(l1));
        sm.assign_cta(
            CtaId(0),
            one_warp_kernel(vec![WarpOp::load_coalesced(Addr(0), 32)]),
        );
        sm.cycle(Cycle(0));
        for c in 1..11 {
            sm.cycle(Cycle(c)); // waiting on the never-completing load
        }
        assert_eq!(sm.stats().memory_stall_cycles, 10);
        assert_eq!(sm.stats().idle_cycles, 10);
    }
}
