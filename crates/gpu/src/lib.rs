//! The GPU core model: kernels, warps, the coalescing unit, and the SM
//! pipeline with pluggable consistency models.
//!
//! This crate rebuilds the GPGPU-Sim-like execution substrate the paper
//! runs on (Section II-A): a kernel is a grid of CTAs, each CTA a group of
//! warps, each warp a stream of [`WarpOp`]s (loads, stores, compute
//! bursts, fences, CTA barriers). An [`Sm`] schedules resident warps
//! round-robin, coalesces each memory instruction's per-lane addresses
//! into block-granular accesses, and drives them through any
//! [`gtsc_protocol::L1Controller`].
//!
//! The consistency model of Section II-B is enforced here, not in the
//! protocol: under [`ConsistencyModel::Sc`] a warp's memory instructions
//! are blocking (at most one outstanding memory instruction per warp);
//! under [`ConsistencyModel::Rc`] a warp keeps a window of outstanding
//! accesses and only [`WarpOp::Fence`] orders them (with the protocol
//! consulted through `fence_ready`, where TC-Weak's GWCT rule lives).
//!
//! [`ConsistencyModel::Sc`]: gtsc_types::ConsistencyModel::Sc
//! [`ConsistencyModel::Rc`]: gtsc_types::ConsistencyModel::Rc
//! [`ConsistencyModel`]: gtsc_types::ConsistencyModel

pub mod coalesce;
pub mod kernel;
pub mod sm;

pub use coalesce::coalesce;
pub use kernel::{Kernel, VecKernel, WarpOp, WarpProgram};
pub use sm::{Sm, SmParams, WarpStallInfo};
