//! Inter-GPU coherence fabric for multi-device G-TSC (DESIGN.md §17).
//!
//! A multi-GPU system joins N on-die G-TSC hierarchies through a
//! timestamp-ordered fabric: each device's banked L2 becomes a
//! [`DeviceL2`] that serves its local L1s out of *delegated* slices of
//! logical time, and a [`HomeNode`] directory owns the master copy of
//! every lease, exactly as the single-GPU `GtscL2` owns leases over its
//! L1s. The delegation is strictly hierarchical:
//!
//! ```text
//!   home grant   [Gwts ───────────────── Grts]      (fabric, HomeNode)
//!   L1 lease        [wts ────── rts]               rts ≤ Grts (nest_rts)
//! ```
//!
//! Every lease a device hands an L1 nests inside a live inter-GPU grant
//! (`L2-lease ⊆ device-grant`, checked online by the sanitizer's
//! `GrantInstall`/`DeviceServe` transitions and offline by the race
//! oracle). Stores are write-through end to end: L1 → device → home, so
//! the home is always authoritative and a crashed device loses no
//! committed data.
//!
//! The fabric reuses the wire vocabulary of the on-die protocol —
//! [`DevToHome`] *is* `L1ToL2` and [`HomeToDev`] *is* `L2ToL1` — so the
//! same `MsgSizes` accounting, `Snap` encodings, and `ReliableNet`
//! transport apply unchanged. What differs is the fault envelope: fabric
//! links are longer-latency and lossier than the on-die NoC, and may
//! partition outright (`gtsc_faults::LinkFaults`); whole devices may
//! crash and rejoin. Recovery composes the existing machinery:
//!
//! * a device crash forces the global Section V-D epoch bump (exactly
//!   like a bank crash), wiping all delegated grants at once;
//! * partitions are ridden out by the transport's retransmit/backoff and
//!   the L1's end-to-end retry;
//! * the home's store-replay filter re-acks duplicate stores with the
//!   original acknowledgement, so retried stores stay idempotent even
//!   when the original ack died with a crashed device.

pub mod device;
pub mod home;

pub use device::{DeviceL2, DeviceParams};
pub use home::{HomeNode, HomeParams};

use gtsc_protocol::msg::{L1ToL2, L2ToL1};

/// Requests travelling device → home over the fabric. The inter-GPU
/// vocabulary is deliberately the on-die one: a device L2 speaks to the
/// home node exactly as an L1 speaks to an L2 bank.
pub type DevToHome = L1ToL2;

/// Responses travelling home → device over the fabric.
pub type HomeToDev = L2ToL1;
