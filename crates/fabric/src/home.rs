//! The home-node directory: serialization point of inter-GPU coherence.
//!
//! The home node plays, over the fabric, the role `GtscL2` plays over
//! the on-die NoC: it owns the master `[wts, rts]` of every block,
//! assigns store timestamps (`store_wts`), extends read grants
//! (`extend_rts`), serves data-less renewals when a device already holds
//! the current version, and runs the Section V-D rollover reset. It is
//! memory-backed (every block is always "resident"), so there is no
//! eviction path and no DRAM below it — the home's image *is* the
//! authoritative multi-GPU memory image.
//!
//! Fault-tolerance specifics beyond `GtscL2`:
//!
//! * **Store replays re-ack.** The on-die bank drops a replayed store
//!   silently because the original ack is never lost, only delayed. Over
//!   the fabric the original ack *can* die — a device crash resets the
//!   home→device flows — and only the L1's end-to-end retry recovers
//!   the store. The home therefore remembers the acknowledgement it sent
//!   for each applied store and re-emits it verbatim when the retry
//!   arrives, keeping the write path idempotent without wedging the
//!   retrying L1. (The re-ack carries its original epoch: a stale-epoch
//!   write ack still certifies commit at the L1, it just installs no
//!   lease.)

use std::collections::{BTreeMap, HashMap, VecDeque};

use gtsc_core::rules::{extend_rts, grant_rts, store_wts};
use gtsc_protocol::msg::{
    Epoch, FillResp, L1ToL2, L2ToL1, LeaseInfo, ReadReq, WriteAckResp, WriteReq,
};
use gtsc_trace::{EventKind, Sanitizer, Tracer, Transition};
use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};
use gtsc_types::{BlockAddr, CacheStats, Cycle, Lease, Timestamp, Version};

/// Construction parameters for [`HomeNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeParams {
    /// Lease length of the inter-GPU grants handed to devices. Longer
    /// than the on-die L1 lease: a grant must amortize a fabric round
    /// trip and leave headroom for the device to nest L1 leases inside.
    pub lease: Lease,
    /// Hardware timestamp width; reaching `2^ts_bits` triggers the
    /// global rollover reset.
    pub ts_bits: u32,
    /// Directory access latency in cycles (on top of fabric latency).
    pub latency: u64,
}

impl Default for HomeParams {
    fn default() -> Self {
        HomeParams {
            lease: Lease(64),
            ts_bits: 48,
            latency: 20,
        }
    }
}

/// Master per-block coherence state at the home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HomeMeta {
    wts: Timestamp,
    rts: Timestamp,
    version: Version,
}

gtsc_types::snap_fields!(HomeMeta { wts, rts, version });

/// The acknowledgement recorded for an applied store, replayed verbatim
/// when the L1's end-to-end retry re-delivers the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AppliedStore {
    version: Version,
    wts: Timestamp,
    rts: Timestamp,
    /// What the read half of an atomic observed (meaningless for plain
    /// stores, never read for them).
    prev: Version,
    epoch: Epoch,
}

gtsc_types::snap_fields!(AppliedStore {
    version,
    wts,
    rts,
    prev,
    epoch,
});

/// The home-node directory. Driven like an `L2Controller` but over
/// device ports instead of SM ports; see the crate docs for the protocol
/// it implements.
#[derive(Debug)]
pub struct HomeNode {
    p: HomeParams,
    /// Master lease state. BTreeMap: the memory image iterates this, and
    /// it must never leak hash order.
    blocks: BTreeMap<BlockAddr, HomeMeta>,
    epoch: Epoch,
    overflow: bool,
    /// Store-replay filter (see module docs): recent acks per block.
    applied: HashMap<BlockAddr, VecDeque<AppliedStore>>,
    /// Requests become serviceable `latency` cycles after arrival.
    in_queue: VecDeque<(Cycle, usize, L1ToL2)>,
    out: VecDeque<(usize, L2ToL1)>,
    stats: CacheStats,
    tracer: Tracer,
    sanitizer: Sanitizer,
    clock: Cycle,
}

impl HomeNode {
    /// Creates an empty directory.
    #[must_use]
    pub fn new(p: HomeParams) -> Self {
        HomeNode {
            p,
            blocks: BTreeMap::new(),
            epoch: 0,
            overflow: false,
            applied: HashMap::new(),
            in_queue: VecDeque::new(),
            out: VecDeque::new(),
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            sanitizer: Sanitizer::disabled(),
            clock: Cycle(0),
        }
    }

    /// The home's current reset epoch.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Installs a protocol event tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs an online transition sanitizer (scoped `Scope::Home`).
    pub fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = sanitizer;
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether no request is queued and no response is waiting.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_queue.is_empty() && self.out.is_empty()
    }

    /// Queued + waiting entries, for stall diagnosis.
    #[must_use]
    pub fn pressure(&self) -> (usize, usize) {
        (self.in_queue.len(), self.out.len())
    }

    /// Accepts a fabric request from device `dev`.
    pub fn on_request(&mut self, dev: usize, msg: L1ToL2, now: Cycle) {
        self.clock = self.clock.max(now);
        self.in_queue.push_back((now + self.p.latency, dev, msg));
    }

    /// Next fabric response to inject: `(device, msg)`.
    pub fn take_response(&mut self) -> Option<(usize, L2ToL1)> {
        self.out.pop_front()
    }

    /// Serves every request whose latency has elapsed.
    pub fn tick(&mut self, now: Cycle) {
        self.clock = self.clock.max(now);
        while let Some((ready, _, _)) = self.in_queue.front() {
            if *ready > now {
                break;
            }
            let (_, dev, msg) = self.in_queue.pop_front().expect("front exists");
            self.serve(dev, msg);
        }
    }

    /// Whether the directory wants the global Section V-D reset.
    #[must_use]
    pub fn needs_reset(&self) -> bool {
        self.overflow
    }

    /// Performs the Section V-D timestamp reset, entering `epoch`: every
    /// grant rebases to `[INIT, lease]`, versions (the data) survive.
    pub fn apply_reset(&mut self, epoch: Epoch) {
        let lease = self.p.lease;
        for meta in self.blocks.values_mut() {
            meta.wts = Timestamp::INIT;
            meta.rts = Timestamp(lease.0);
        }
        self.epoch = epoch;
        self.overflow = false;
        self.stats.ts_rollovers += 1;
        self.tracer
            .record_with(self.clock, || EventKind::Rollover { epoch });
        self.sanitizer
            .check_with(self.clock, || Transition::EpochEnter { epoch });
    }

    /// The authoritative multi-GPU memory image, sorted by block.
    #[must_use]
    pub fn memory_image(&self) -> Vec<(BlockAddr, Version)> {
        self.blocks.iter().map(|(b, m)| (*b, m.version)).collect()
    }

    fn note_ts(&mut self, ts: Timestamp) {
        if ts.overflows(self.p.ts_bits) {
            self.overflow = true;
        }
    }

    /// Brings a stale-epoch request into the current epoch (Section V-D:
    /// its timestamps are meaningless, so it degrades to a fresh-warp
    /// request). Mirrors `GtscL2::sanitize`.
    fn sanitize(&self, msg: L1ToL2) -> L1ToL2 {
        match msg {
            L1ToL2::Read(r) if r.epoch < self.epoch => L1ToL2::Read(ReadReq {
                wts: Timestamp(0),
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                ..r
            }),
            L1ToL2::Write(w) if w.epoch < self.epoch => L1ToL2::Write(WriteReq {
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                ..w
            }),
            L1ToL2::Atomic(w) if w.epoch < self.epoch => L1ToL2::Atomic(WriteReq {
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                ..w
            }),
            other => other,
        }
    }

    /// The replay filter: if this exact store was already applied,
    /// returns its recorded ack for re-emission; otherwise records the
    /// ack being applied now. Bounded far deeper than any retry lag.
    fn replay_or_record(
        &mut self,
        block: BlockAddr,
        record: Option<AppliedStore>,
        version: Version,
    ) -> Option<AppliedStore> {
        const HISTORY: usize = 64;
        let seen = self.applied.entry(block).or_default();
        if let Some(prior) = seen.iter().find(|a| a.version == version) {
            return Some(*prior);
        }
        if let Some(a) = record {
            if seen.len() == HISTORY {
                seen.pop_front();
            }
            seen.push_back(a);
        }
        None
    }

    fn serve(&mut self, dev: usize, msg: L1ToL2) {
        let msg = self.sanitize(msg);
        let block = msg.block();
        self.stats.accesses += 1;
        let lease = self.p.lease;
        // Memory-backed: an untouched block materializes with the
        // fresh-from-memory grant `[INIT, INIT + lease]`.
        let entry = *self.blocks.entry(block).or_insert(HomeMeta {
            wts: Timestamp::INIT,
            rts: grant_rts(Timestamp::INIT, lease),
            version: Version::ZERO,
        });
        match msg {
            L1ToL2::Read(r) => {
                let new_rts = extend_rts(entry.rts, r.warp_ts, lease);
                let meta = self.blocks.get_mut(&block).expect("just inserted");
                meta.rts = new_rts;
                let grant_wts = meta.wts;
                let version = meta.version;
                self.note_ts(new_rts);
                let epoch = self.epoch;
                self.sanitizer
                    .check_with(self.clock, || Transition::L2Grant {
                        block,
                        wts: grant_wts,
                        rts: new_rts,
                        epoch,
                    });
                let resp = if r.wts == grant_wts {
                    // The device already holds this version: extend the
                    // grant data-lessly (the Section VI-C saving, now
                    // worth a whole fabric data transfer).
                    self.stats.renewals += 1;
                    self.tracer.record_with(self.clock, || EventKind::Renewal {
                        block,
                        rts: new_rts.0,
                    });
                    L2ToL1::Renew {
                        block,
                        lease: LeaseInfo::Logical {
                            wts: r.wts,
                            rts: new_rts,
                        },
                        epoch,
                        span: r.span,
                    }
                } else {
                    self.stats.hits += 1;
                    self.tracer
                        .record_with(self.clock, || EventKind::LeaseGrant {
                            block,
                            wts: grant_wts.0,
                            rts: new_rts.0,
                        });
                    L2ToL1::Fill(FillResp {
                        block,
                        lease: LeaseInfo::Logical {
                            wts: grant_wts,
                            rts: new_rts,
                        },
                        version,
                        epoch,
                        span: r.span,
                    })
                };
                self.out.push_back((dev, resp));
            }
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                let atomic = matches!(msg, L1ToL2::Atomic(_));
                if let Some(prior) = self.replay_or_record(block, None, w.version) {
                    // A retried store the home already applied: re-emit
                    // the original acknowledgement (see module docs).
                    self.stats.replayed_stores += 1;
                    self.tracer
                        .record_with(self.clock, || EventKind::ReplayDrop { block });
                    let ack = WriteAckResp {
                        block,
                        lease: LeaseInfo::Logical {
                            wts: prior.wts,
                            rts: prior.rts,
                        },
                        version: prior.version,
                        epoch: prior.epoch,
                        span: w.span,
                    };
                    let resp = if atomic {
                        L2ToL1::AtomicAck {
                            ack,
                            prev: prior.prev,
                        }
                    } else {
                        L2ToL1::WriteAck(ack)
                    };
                    self.out.push_back((dev, resp));
                    return;
                }
                // Figure 5 over the fabric: the store is scheduled after
                // every outstanding inter-GPU grant; writes never stall.
                let prev = entry.version;
                let wts = store_wts(entry.rts, w.warp_ts);
                let rts = grant_rts(wts, lease);
                let meta = self.blocks.get_mut(&block).expect("just inserted");
                meta.wts = wts;
                meta.rts = rts;
                meta.version = w.version;
                let epoch = self.epoch;
                let _ = self.replay_or_record(
                    block,
                    Some(AppliedStore {
                        version: w.version,
                        wts,
                        rts,
                        prev,
                        epoch,
                    }),
                    w.version,
                );
                self.stats.stores += 1;
                self.note_ts(rts);
                self.tracer
                    .record_with(self.clock, || EventKind::StoreCommit { block, wts: wts.0 });
                self.sanitizer
                    .check_with(self.clock, || Transition::L2Store {
                        block,
                        wts,
                        rts,
                        epoch,
                    });
                let ack = WriteAckResp {
                    block,
                    lease: LeaseInfo::Logical { wts, rts },
                    version: w.version,
                    epoch,
                    span: w.span,
                };
                let resp = if atomic {
                    L2ToL1::AtomicAck { ack, prev }
                } else {
                    L2ToL1::WriteAck(ack)
                };
                self.out.push_back((dev, resp));
            }
        }
    }

    /// Serializes the directory's dynamic state (DESIGN.md §14).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.blocks.save(w);
        self.epoch.save(w);
        self.overflow.save(w);
        self.applied.save(w);
        self.in_queue.save(w);
        self.out.save(w);
        self.stats.save(w);
        self.clock.save(w);
    }

    /// Restores state saved by [`HomeNode::save_state`].
    ///
    /// # Errors
    ///
    /// Any decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.blocks = Snap::load(r)?;
        self.epoch = Snap::load(r)?;
        self.overflow = Snap::load(r)?;
        self.applied = Snap::load(r)?;
        self.in_queue = Snap::load(r)?;
        self.out = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.clock = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::SpanId;

    fn read(block: u64, wts: u64, warp_ts: u64) -> L1ToL2 {
        L1ToL2::Read(ReadReq {
            block: BlockAddr(block),
            wts: Timestamp(wts),
            warp_ts: Timestamp(warp_ts),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    fn write(block: u64, warp_ts: u64, version: u64) -> L1ToL2 {
        L1ToL2::Write(WriteReq {
            block: BlockAddr(block),
            warp_ts: Timestamp(warp_ts),
            version: Version(version),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    fn settle(home: &mut HomeNode, start: Cycle) -> Vec<(usize, L2ToL1)> {
        let mut out = Vec::new();
        for c in start.0..start.0 + 1000 {
            home.tick(Cycle(c));
            while let Some(r) = home.take_response() {
                out.push(r);
            }
            if home.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn cold_read_gets_memory_grant() {
        let mut home = HomeNode::new(HomeParams::default());
        home.on_request(2, read(5, 0, 1), Cycle(0));
        let resps = settle(&mut home, Cycle(0));
        assert_eq!(resps.len(), 1);
        let (dev, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(*dev, 2);
        assert_eq!(f.version, Version::ZERO);
        // [INIT, INIT + 64], extended for warp_ts 1 (no-op here).
        assert_eq!(
            f.lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(65)
            }
        );
    }

    #[test]
    fn matching_wts_renews_without_data() {
        let mut home = HomeNode::new(HomeParams::default());
        home.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut home, Cycle(0));
        home.on_request(0, read(5, 1, 200), Cycle(100));
        let resps = settle(&mut home, Cycle(100));
        let (_, L2ToL1::Renew { lease, .. }) = &resps[0] else {
            panic!("expected renewal")
        };
        assert_eq!(
            *lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(264)
            }
        );
        assert_eq!(home.stats().renewals, 1);
    }

    #[test]
    fn store_lands_after_outstanding_grant_and_image_updates() {
        let mut home = HomeNode::new(HomeParams::default());
        home.on_request(1, read(5, 0, 1), Cycle(0)); // grant rts = 65
        settle(&mut home, Cycle(0));
        home.on_request(0, write(5, 1, 42), Cycle(50));
        let resps = settle(&mut home, Cycle(50));
        let (_, L2ToL1::WriteAck(a)) = &resps[0] else {
            panic!("expected ack")
        };
        assert_eq!(
            a.lease,
            LeaseInfo::Logical {
                wts: Timestamp(66),
                rts: Timestamp(130)
            }
        );
        assert_eq!(home.memory_image(), vec![(BlockAddr(5), Version(42))]);
    }

    #[test]
    fn replayed_store_re_acks_the_original() {
        let mut home = HomeNode::new(HomeParams::default());
        home.on_request(0, write(5, 1, 42), Cycle(0));
        let first = settle(&mut home, Cycle(0));
        // Another device stores after; then the first store is retried.
        home.on_request(1, write(5, 1, 43), Cycle(100));
        settle(&mut home, Cycle(100));
        home.on_request(0, write(5, 1, 42), Cycle(200));
        let resps = settle(&mut home, Cycle(200));
        let (_, L2ToL1::WriteAck(a)) = &resps[0] else {
            panic!("expected re-ack")
        };
        let (_, L2ToL1::WriteAck(orig)) = &first[0] else {
            panic!("expected original ack")
        };
        assert_eq!(a, orig, "re-ack is the original ack, verbatim");
        // The replay was NOT re-applied: the image still holds v43.
        assert_eq!(home.memory_image(), vec![(BlockAddr(5), Version(43))]);
        assert_eq!(home.stats().replayed_stores, 1);
    }

    #[test]
    fn atomic_re_ack_preserves_observed_prev() {
        let mut home = HomeNode::new(HomeParams::default());
        let atomic = |v: u64| {
            L1ToL2::Atomic(WriteReq {
                block: BlockAddr(9),
                warp_ts: Timestamp(1),
                version: Version(v),
                epoch: 0,
                span: SpanId::NONE,
            })
        };
        home.on_request(0, atomic(10), Cycle(0));
        home.on_request(1, atomic(11), Cycle(0));
        settle(&mut home, Cycle(0));
        // Retry of the first atomic must observe the ORIGINAL prev
        // (ZERO), not the current version.
        home.on_request(0, atomic(10), Cycle(500));
        let resps = settle(&mut home, Cycle(500));
        let (_, L2ToL1::AtomicAck { ack, prev }) = &resps[0] else {
            panic!("expected atomic re-ack")
        };
        assert_eq!(*prev, Version::ZERO);
        assert_eq!(ack.version, Version(10));
    }

    #[test]
    fn rollover_resets_grants_and_stale_requests_degrade() {
        let mut home = HomeNode::new(HomeParams {
            ts_bits: 8, // cap 256
            ..HomeParams::default()
        });
        home.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut home, Cycle(0));
        assert!(!home.needs_reset());
        home.on_request(0, read(5, 1, 250), Cycle(50)); // rts -> 314 > 255
        settle(&mut home, Cycle(50));
        assert!(home.needs_reset());
        home.apply_reset(1);
        assert_eq!(home.epoch(), 1);
        assert!(!home.needs_reset());
        // Stale-epoch renewal degrades to a fresh fill in epoch 1.
        home.on_request(0, read(5, 1, 250), Cycle(100));
        let resps = settle(&mut home, Cycle(100));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("stale request must fill")
        };
        assert_eq!(f.epoch, 1);
        assert_eq!(
            f.lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(65)
            }
        );
    }

    #[test]
    fn latency_delays_service_and_snapshot_round_trips() {
        let mut home = HomeNode::new(HomeParams {
            latency: 10,
            ..HomeParams::default()
        });
        home.on_request(0, read(5, 0, 1), Cycle(0));
        home.tick(Cycle(5));
        assert!(home.take_response().is_none());
        assert!(!home.is_idle());
        // Snapshot mid-flight, restore, and both copies serve alike.
        let mut w = SnapWriter::new();
        home.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut copy = HomeNode::new(HomeParams {
            latency: 10,
            ..HomeParams::default()
        });
        let mut r = SnapReader::new(&bytes);
        copy.load_state(&mut r).expect("restore");
        r.expect_end("home snapshot").expect("fully consumed");
        let a = settle(&mut home, Cycle(10));
        let b = settle(&mut copy, Cycle(10));
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn sanitizer_sees_home_grants_and_stores() {
        use gtsc_trace::Scope;
        let root = Sanitizer::enabled(Scope::Sm(0));
        let mut home = HomeNode::new(HomeParams::default());
        home.set_sanitizer(root.for_scope(Scope::Home(0)));
        home.on_request(0, read(5, 0, 1), Cycle(0));
        home.on_request(1, write(5, 1, 7), Cycle(10));
        settle(&mut home, Cycle(0));
        assert!(root.violations().is_empty(), "{:?}", root.violations());
        assert!(root.checked() >= 2);
    }
}
