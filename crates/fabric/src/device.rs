//! The per-device L2: serves local L1s out of delegated inter-GPU grants.
//!
//! A [`DeviceL2`] holds, per block, the grant `[Gwts, Grts]` it received
//! from the home node, and serves its local L1s *on its own authority*
//! as long as the requesting warp's timestamp is covered (`warp_ts ≤
//! Grts`). The lease it hands the L1 is clamped by `nest_rts` so it can
//! never escape the grant — the `L2-lease ⊆ device-grant` invariant the
//! sanitizer and race oracle check. A warp past the grant forces a
//! fabric round trip that extends the grant (a data-less `Renew` when
//! the device already holds the current version).
//!
//! Stores are write-through to the home: the device keeps no dirty
//! state, so a whole-device crash loses nothing that was acknowledged.
//! Crash recovery reuses the Section V-D machinery — the crash wipes
//! every installed grant and in-flight transaction, then forces the
//! global epoch bump (exactly like `GtscL2::crash`); the device rejoins
//! empty and re-acquires grants on demand.

use std::collections::{BTreeMap, VecDeque};

use gtsc_core::rules::{extend_rts, lease_covers, nest_rts};
use gtsc_core::ProtocolMutation;
use gtsc_protocol::msg::{Epoch, FillResp, L1ToL2, L2ToL1, LeaseInfo, ReadReq};
use gtsc_protocol::ControllerPressure;
use gtsc_trace::{EventKind, Sanitizer, Scope, Tracer, Transition};
use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};
use gtsc_types::{BlockAddr, CacheStats, Cycle, Lease, Timestamp, Version};

/// Construction parameters for [`DeviceL2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceParams {
    /// Lease length handed to local L1s (nested inside the grant; the
    /// grant lease itself is the home's, longer).
    pub lease: Lease,
    /// Bank access latency in cycles.
    pub latency: u64,
    /// Requests processed per cycle.
    pub ports: usize,
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            lease: Lease::default(),
            latency: 10,
            ports: 1,
        }
    }
}

/// One installed inter-GPU grant plus the local serve high-water.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DevMeta {
    /// Write timestamp of the granted version.
    wts: Timestamp,
    /// Grant upper bound: no L1 lease may reach past this.
    rts: Timestamp,
    /// Highest `rts` served to a local L1 so far (starts at `wts`).
    served_rts: Timestamp,
    /// Version of the granted data.
    version: Version,
}

gtsc_types::snap_fields!(DevMeta {
    wts,
    rts,
    served_rts,
    version,
});

/// The device-side L2 of one GPU in a multi-GPU system. Driven by the
/// simulator like an `L2Controller` toward its local L1s, plus a fabric
/// side: [`DeviceL2::take_fabric_request`] drains requests toward the
/// home node and [`DeviceL2::on_fabric_response`] delivers its answers.
#[derive(Debug)]
pub struct DeviceL2 {
    p: DeviceParams,
    /// Installed grants (the device's only coherence state). BTreeMap:
    /// snapshot bytes and iteration order must be deterministic.
    tags: BTreeMap<BlockAddr, DevMeta>,
    epoch: Epoch,
    needs_reset: bool,
    /// L1 requests become serviceable `latency` cycles after arrival.
    in_queue: VecDeque<(Cycle, usize, L1ToL2)>,
    /// Requests waiting to cross the fabric.
    fabric_out: VecDeque<L1ToL2>,
    /// Responses waiting to return to local L1s.
    out_resp: VecDeque<(usize, L2ToL1)>,
    /// Reads parked until a grant covering them is installed.
    read_waiters: BTreeMap<BlockAddr, Vec<(usize, ReadReq)>>,
    /// Stores forwarded to the home, keyed by their globally-unique
    /// version: `(local SM, is_atomic)`.
    write_waiters: BTreeMap<Version, (usize, bool)>,
    stats: CacheStats,
    tracer: Tracer,
    sanitizer: Sanitizer,
    clock: Cycle,
    mutation: ProtocolMutation,
}

impl DeviceL2 {
    /// Creates an empty device L2 (no grants installed).
    #[must_use]
    pub fn new(p: DeviceParams) -> Self {
        DeviceL2 {
            p,
            tags: BTreeMap::new(),
            epoch: 0,
            needs_reset: false,
            in_queue: VecDeque::new(),
            fabric_out: VecDeque::new(),
            out_resp: VecDeque::new(),
            read_waiters: BTreeMap::new(),
            write_waiters: BTreeMap::new(),
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            sanitizer: Sanitizer::disabled(),
            clock: Cycle(0),
            mutation: ProtocolMutation::None,
        }
    }

    /// Arms a seeded protocol mutant (oracle validation only).
    #[doc(hidden)]
    pub fn set_mutation(&mut self, mutation: ProtocolMutation) {
        self.mutation = mutation;
    }

    /// The device's current reset epoch.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The installed grant for `block`, as `(wts, rts)` — test/diagnosis
    /// accessor.
    #[must_use]
    pub fn installed_grant(&self, block: BlockAddr) -> Option<(Timestamp, Timestamp)> {
        self.tags.get(&block).map(|m| (m.wts, m.rts))
    }

    /// Installs a protocol event tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs an online transition sanitizer (scoped `Scope::Device`).
    pub fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = sanitizer;
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether no transaction is pending inside the device L2.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_queue.is_empty()
            && self.fabric_out.is_empty()
            && self.out_resp.is_empty()
            && self.read_waiters.values().all(Vec::is_empty)
            && self.write_waiters.is_empty()
    }

    /// Occupancy snapshot for stall diagnosis.
    #[must_use]
    pub fn pressure(&self) -> ControllerPressure {
        ControllerPressure {
            mshr: self.read_waiters.values().map(Vec::len).sum::<usize>()
                + self.write_waiters.len(),
            out_queue: self.in_queue.len() + self.fabric_out.len(),
            waiting: self.out_resp.len(),
        }
    }

    /// Device-scoped stall attribution for the watchdog's diagnosis:
    /// `(expired_grant_waits, cold_grant_waits, stores_awaiting_home)`.
    /// A parked read whose block still has an installed grant is stalled
    /// *because the inter-GPU grant expired* (the warp outran it) — a
    /// different failure mode than a cold first acquisition.
    #[must_use]
    pub fn stall_attribution(&self) -> (usize, usize, usize) {
        let (mut expired, mut cold) = (0usize, 0usize);
        for (block, parked) in &self.read_waiters {
            if self.tags.contains_key(block) {
                expired += parked.len();
            } else {
                cold += parked.len();
            }
        }
        (expired, cold, self.write_waiters.len())
    }

    /// Blocks whose parked readers outran a still-installed grant, as
    /// `(block, grant rts)` — named in the stall diagnosis so an expired
    /// inter-GPU grant is reported as such, not as a generic MSHR stall.
    #[must_use]
    pub fn expired_grant_blocks(&self) -> Vec<(BlockAddr, u64)> {
        self.read_waiters
            .iter()
            .filter(|(_, parked)| !parked.is_empty())
            .filter_map(|(block, _)| self.tags.get(block).map(|m| (*block, m.rts.0)))
            .collect()
    }

    /// Accepts a request from local SM `src`.
    pub fn on_request(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        self.clock = self.clock.max(now);
        self.in_queue.push_back((now + self.p.latency, src, msg));
    }

    /// Next response to inject into the local response network.
    pub fn take_response(&mut self) -> Option<(usize, L2ToL1)> {
        self.out_resp.pop_front()
    }

    /// Next request to inject into the fabric toward the home node.
    pub fn take_fabric_request(&mut self) -> Option<L1ToL2> {
        self.fabric_out.pop_front()
    }

    /// Serves ready L1 requests (up to `ports` per cycle).
    pub fn tick(&mut self, now: Cycle) {
        self.clock = self.clock.max(now);
        for _ in 0..self.p.ports {
            match self.in_queue.front() {
                Some((ready, _, _)) if *ready <= now => {
                    let (_, src, msg) = self.in_queue.pop_front().expect("front exists");
                    self.serve(src, msg);
                }
                _ => break,
            }
        }
    }

    /// Whether the device wants the global Section V-D reset (set by
    /// [`DeviceL2::crash`]; the simulator then bumps the global epoch).
    #[must_use]
    pub fn needs_reset(&self) -> bool {
        self.needs_reset
    }

    /// Enters `epoch`: every installed grant belongs to the old logical
    /// time coordinate system and is discarded (re-acquired on demand).
    /// Parked requests survive — their fabric round trips are answered
    /// in the new epoch — but their timestamps are in dead coordinates,
    /// so they degrade to fresh-warp requests (Section V-D, mirroring
    /// the home's `sanitize`). Without the degrade, a refetch would
    /// replay a near-overflow `warp_ts` at the *new* epoch, the home
    /// would overflow again, and the reset would livelock.
    pub fn apply_reset(&mut self, epoch: Epoch) {
        self.tags.clear();
        self.epoch = epoch;
        self.needs_reset = false;
        self.stats.ts_rollovers += 1;
        for parked in self.read_waiters.values_mut() {
            for (_, r) in parked.iter_mut() {
                r.wts = Timestamp(0);
                r.warp_ts = Timestamp::INIT;
                r.epoch = epoch;
            }
        }
        self.tracer
            .record_with(self.clock, || EventKind::Rollover { epoch });
    }

    /// Crashes the whole device: every grant, parked request, and queued
    /// message vanishes. Committed data is safe at the home (stores are
    /// write-through); in-flight L1 requests are recovered by the L1's
    /// end-to-end retry. Recovery rides the Section V-D machinery: the
    /// simulator sees [`DeviceL2::needs_reset`] and bumps the global
    /// epoch, exactly as for an on-die bank crash.
    pub fn crash(&mut self, now: Cycle) {
        self.clock = self.clock.max(now);
        self.tags.clear();
        self.in_queue.clear();
        self.fabric_out.clear();
        self.out_resp.clear();
        self.read_waiters.clear();
        self.write_waiters.clear();
        let epoch = self.epoch;
        let dev = match self.tracer.scope() {
            Scope::Device(d) => d,
            _ => 0,
        };
        self.tracer
            .record_with(self.clock, || EventKind::BankReset { bank: dev, epoch });
        self.sanitizer
            .check_with(self.clock, || Transition::DeviceCrash { epoch });
        self.needs_reset = true;
    }

    /// Installs a grant received from the home and reports it to the
    /// sanitizer.
    fn install_grant(
        &mut self,
        block: BlockAddr,
        wts: Timestamp,
        rts: Timestamp,
        version: Version,
    ) {
        let meta = DevMeta {
            wts,
            rts,
            served_rts: wts,
            version,
        };
        match self.tags.get_mut(&block) {
            // Same version: pure grant extension, keep the serve
            // high-water.
            Some(m) if m.wts == wts => m.rts = m.rts.max(rts),
            Some(m) => *m = meta,
            None => {
                self.tags.insert(block, meta);
            }
        }
        let epoch = self.epoch;
        self.tracer
            .record_with(self.clock, || EventKind::LeaseGrant {
                block,
                wts: wts.0,
                rts: rts.0,
            });
        self.sanitizer
            .check_with(self.clock, || Transition::GrantInstall {
                block,
                wts,
                rts,
                epoch,
            });
    }

    /// Serves a read locally from the installed grant (caller checked
    /// coverage): the L1 lease is `nest_rts`-clamped inside the grant.
    fn serve_local(&mut self, src: usize, r: ReadReq) {
        let lease = self.p.lease;
        let mutated = self.mutation == ProtocolMutation::ServePastGrantRts;
        let meta = self.tags.get_mut(&r.block).expect("caller checked grant");
        let new_rts = if mutated {
            // Mutant: drop the nest_rts clamp — the lease may escape the
            // grant, the bug the `L2-lease ⊆ device-grant` checkers catch.
            extend_rts(meta.served_rts, r.warp_ts, lease)
        } else {
            nest_rts(meta.served_rts, r.warp_ts, lease, meta.rts)
        };
        meta.served_rts = new_rts;
        let (wts, version) = (meta.wts, meta.version);
        let epoch = self.epoch;
        self.stats.hits += 1;
        self.sanitizer
            .check_with(self.clock, || Transition::DeviceServe {
                block: r.block,
                wts,
                rts: new_rts,
                epoch,
            });
        let resp = if r.wts == wts {
            self.stats.renewals += 1;
            self.tracer.record_with(self.clock, || EventKind::Renewal {
                block: r.block,
                rts: new_rts.0,
            });
            L2ToL1::Renew {
                block: r.block,
                lease: LeaseInfo::Logical { wts, rts: new_rts },
                epoch,
                span: r.span,
            }
        } else {
            L2ToL1::Fill(FillResp {
                block: r.block,
                lease: LeaseInfo::Logical { wts, rts: new_rts },
                version,
                epoch,
                span: r.span,
            })
        };
        self.out_resp.push_back((src, resp));
    }

    /// Sends a read toward the home for `block`, renewing data-lessly
    /// when a (too-short) grant is already installed.
    fn forward_read(&mut self, block: BlockAddr, warp_ts: Timestamp, span: gtsc_types::SpanId) {
        let wts = self.tags.get(&block).map_or(Timestamp(0), |m| m.wts);
        self.fabric_out.push_back(L1ToL2::Read(ReadReq {
            block,
            wts,
            warp_ts,
            epoch: self.epoch,
            span,
        }));
    }

    fn serve(&mut self, src: usize, msg: L1ToL2) {
        self.stats.accesses += 1;
        match msg {
            L1ToL2::Read(r) => {
                let covered = self
                    .tags
                    .get(&r.block)
                    .is_some_and(|m| lease_covers(m.rts, r.warp_ts));
                if covered {
                    self.serve_local(src, r);
                    return;
                }
                if self.tags.contains_key(&r.block) {
                    self.stats.expired_misses += 1;
                } else {
                    self.stats.cold_misses += 1;
                    self.tracer.record_with(self.clock, || EventKind::ColdMiss {
                        block: r.block,
                        warp: 0,
                    });
                }
                let parked = self.read_waiters.entry(r.block).or_default();
                let first = parked.is_empty();
                parked.push((src, r));
                if first {
                    self.forward_read(r.block, r.warp_ts, r.span);
                } else {
                    self.stats.mshr_merges += 1;
                }
            }
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                // Write-through: every store crosses the fabric; the
                // home serializes and assigns its timestamp.
                self.stats.stores += 1;
                let atomic = matches!(msg, L1ToL2::Atomic(_));
                self.write_waiters.insert(w.version, (src, atomic));
                self.fabric_out.push_back(msg);
            }
        }
    }

    /// Serves every parked read now covered by the installed grant; if
    /// any remain uncovered, sends one follow-up read extending the
    /// grant to the farthest waiter.
    fn drain_waiters(&mut self, block: BlockAddr) {
        let Some(parked) = self.read_waiters.get_mut(&block) else {
            return;
        };
        let waiting = std::mem::take(parked);
        let mut still = Vec::new();
        for (src, r) in waiting {
            let covered = self
                .tags
                .get(&block)
                .is_some_and(|m| lease_covers(m.rts, r.warp_ts));
            if covered {
                self.serve_local(src, r);
            } else {
                still.push((src, r));
            }
        }
        if let Some(&(_, far)) = still.iter().max_by_key(|(_, r)| r.warp_ts) {
            self.forward_read(block, far.warp_ts, far.span);
        }
        if still.is_empty() {
            self.read_waiters.remove(&block);
        } else {
            self.read_waiters.insert(block, still);
        }
    }

    /// Delivers a response that crossed the fabric from the home node.
    pub fn on_fabric_response(&mut self, msg: L2ToL1, now: Cycle) {
        self.clock = self.clock.max(now);
        let e = msg.epoch();
        if e > self.epoch {
            // The home is already in a newer epoch (the simulator's
            // global bump lands this cycle): adopt it — old grants are
            // in dead coordinates.
            self.apply_reset(e);
            // apply_reset counts a rollover the simulator also counts;
            // adoption is the same event seen from the fabric side.
            self.stats.ts_rollovers -= 1;
        }
        if e < self.epoch {
            match msg {
                // A stale write ack still certifies that the store
                // committed (the L1 has the same rule); it just installs
                // no lease in the new coordinate system.
                L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                    if let Some((src, _)) = self.write_waiters.remove(&a.version) {
                        self.out_resp.push_back((src, msg));
                    }
                }
                // Stale grants are unusable; if readers still wait,
                // re-ask in the current epoch.
                L2ToL1::Fill(f) => self.refetch_if_waiting(f.block),
                L2ToL1::Renew { block, .. } => self.refetch_if_waiting(block),
                L2ToL1::Invalidate { .. } => {}
            }
            return;
        }
        match msg {
            L2ToL1::Fill(f) => {
                if let LeaseInfo::Logical { wts, rts } = f.lease {
                    self.install_grant(f.block, wts, rts, f.version);
                    self.drain_waiters(f.block);
                }
            }
            L2ToL1::Renew { block, lease, .. } => {
                match (self.tags.contains_key(&block), lease) {
                    (true, LeaseInfo::Logical { wts, rts }) => {
                        self.install_grant(block, wts, rts, Version::ZERO);
                        self.drain_waiters(block);
                    }
                    // Renewed a grant the device no longer holds (lost
                    // to a rollover in between): the data is gone, so a
                    // full refetch is needed.
                    _ => self.refetch_if_waiting(block),
                }
            }
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                if let LeaseInfo::Logical { wts, rts } = a.lease {
                    // The ack carries the fresh grant for the version
                    // just written — install it so local readers of the
                    // store's result need no extra fabric trip.
                    self.install_grant(a.block, wts, rts, a.version);
                }
                if let Some((src, _)) = self.write_waiters.remove(&a.version) {
                    self.out_resp.push_back((src, msg));
                }
                self.drain_waiters(a.block);
            }
            L2ToL1::Invalidate { block, .. } => {
                self.tags.remove(&block);
            }
        }
    }

    fn refetch_if_waiting(&mut self, block: BlockAddr) {
        if let Some((_, far)) = self
            .read_waiters
            .get(&block)
            .and_then(|w| w.iter().max_by_key(|(_, r)| r.warp_ts))
        {
            let (warp_ts, span) = (far.warp_ts, far.span);
            self.forward_read(block, warp_ts, span);
        }
    }

    /// Serializes the device's dynamic state (DESIGN.md §14).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.tags.save(w);
        self.epoch.save(w);
        self.needs_reset.save(w);
        self.in_queue.save(w);
        self.fabric_out.save(w);
        self.out_resp.save(w);
        self.read_waiters.save(w);
        self.write_waiters.save(w);
        self.stats.save(w);
        self.clock.save(w);
    }

    /// Restores state saved by [`DeviceL2::save_state`].
    ///
    /// # Errors
    ///
    /// Any decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tags = Snap::load(r)?;
        self.epoch = Snap::load(r)?;
        self.needs_reset = Snap::load(r)?;
        self.in_queue = Snap::load(r)?;
        self.fabric_out = Snap::load(r)?;
        self.out_resp = Snap::load(r)?;
        self.read_waiters = Snap::load(r)?;
        self.write_waiters = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.clock = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::{HomeNode, HomeParams};
    use gtsc_protocol::msg::WriteReq;
    use gtsc_types::SpanId;

    fn read(block: u64, wts: u64, warp_ts: u64) -> L1ToL2 {
        L1ToL2::Read(ReadReq {
            block: BlockAddr(block),
            wts: Timestamp(wts),
            warp_ts: Timestamp(warp_ts),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    fn write(block: u64, warp_ts: u64, version: u64) -> L1ToL2 {
        L1ToL2::Write(WriteReq {
            block: BlockAddr(block),
            warp_ts: Timestamp(warp_ts),
            version: Version(version),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    /// Pumps device ↔ home with zero fabric latency until both idle.
    fn settle(dev: &mut DeviceL2, home: &mut HomeNode, start: Cycle) -> Vec<(usize, L2ToL1)> {
        let mut out = Vec::new();
        for c in start.0..start.0 + 2000 {
            dev.tick(Cycle(c));
            while let Some(req) = dev.take_fabric_request() {
                home.on_request(0, req, Cycle(c));
            }
            home.tick(Cycle(c));
            while let Some((_, resp)) = home.take_response() {
                dev.on_fabric_response(resp, Cycle(c));
            }
            while let Some(r) = dev.take_response() {
                out.push(r);
            }
            if dev.is_idle() && home.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn cold_read_acquires_grant_then_serves_locally() {
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.on_request(0, read(5, 0, 1), Cycle(0));
        let resps = settle(&mut dev, &mut home, Cycle(0));
        assert_eq!(resps.len(), 1);
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        // The L1 lease nests inside the installed grant.
        let (gwts, grts) = dev.installed_grant(BlockAddr(5)).expect("grant installed");
        let LeaseInfo::Logical { wts, rts } = f.lease else {
            panic!("logical lease")
        };
        assert_eq!(wts, gwts);
        assert!(rts <= grts, "lease rts {rts} escapes grant rts {grts}");
        assert_eq!(dev.stats().cold_misses, 1);
        // A second covered read is a pure local hit: no fabric traffic.
        let fabric_before = home.stats().accesses;
        dev.on_request(1, read(5, wts.0, 2), Cycle(500));
        let resps = settle(&mut dev, &mut home, Cycle(500));
        assert_eq!(resps.len(), 1);
        assert!(matches!(resps[0].1, L2ToL1::Renew { .. }));
        assert_eq!(home.stats().accesses, fabric_before, "served on-device");
    }

    #[test]
    fn warp_past_grant_forces_fabric_renewal() {
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut dev, &mut home, Cycle(0));
        let (_, grts) = dev.installed_grant(BlockAddr(5)).unwrap();
        // A warp beyond the grant cannot be served on-device.
        dev.on_request(0, read(5, 1, grts.0 + 10), Cycle(500));
        let resps = settle(&mut dev, &mut home, Cycle(500));
        assert_eq!(resps.len(), 1);
        let (_, new_grts) = dev.installed_grant(BlockAddr(5)).unwrap();
        assert!(new_grts > grts, "grant must have been extended");
        assert_eq!(dev.stats().expired_misses, 1);
        // The home renewed data-lessly (device already held the version).
        assert_eq!(home.stats().renewals, 1);
    }

    #[test]
    fn every_served_lease_nests_inside_live_grant() {
        // The tentpole invariant, end to end through the sanitizer.
        let root = Sanitizer::enabled(Scope::Sm(0));
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.set_sanitizer(root.for_scope(Scope::Device(0)));
        home.set_sanitizer(root.for_scope(Scope::Home(0)));
        for i in 0..20u64 {
            dev.on_request(0, read(i % 3, 0, 1 + i * 7), Cycle(i * 100));
            if i % 4 == 3 {
                dev.on_request(1, write(i % 3, 1 + i * 7, 100 + i), Cycle(i * 100 + 50));
            }
        }
        settle(&mut dev, &mut home, Cycle(0));
        assert!(root.violations().is_empty(), "{:?}", root.violations());
        assert!(root.checked() > 20);
    }

    #[test]
    fn serve_past_grant_mutant_is_flagged_by_sanitizer() {
        let root = Sanitizer::enabled(Scope::Sm(0));
        let mut dev = DeviceL2::new(DeviceParams {
            // L1 lease as long as the home grant: extend_rts overshoots
            // the grant edge immediately without the nest_rts clamp.
            lease: Lease(64),
            ..DeviceParams::default()
        });
        let mut home = HomeNode::new(HomeParams::default());
        dev.set_sanitizer(root.for_scope(Scope::Device(0)));
        home.set_sanitizer(root.for_scope(Scope::Home(0)));
        dev.set_mutation(ProtocolMutation::ServePastGrantRts);
        dev.on_request(0, read(5, 0, 30), Cycle(0));
        settle(&mut dev, &mut home, Cycle(0));
        // A covered warp near the grant edge: the unclamped extend_rts
        // hands the L1 a lease reaching past the grant.
        let (_, grts) = dev.installed_grant(BlockAddr(5)).unwrap();
        dev.on_request(1, read(5, 1, grts.0 - 1), Cycle(500));
        settle(&mut dev, &mut home, Cycle(500));
        let v = root.violations();
        assert!(
            v.iter().any(|m| m.contains("L2-lease ⊄ device-grant")),
            "mutant must be caught: {v:?}"
        );
    }

    #[test]
    fn store_writes_through_and_ack_installs_grant() {
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.on_request(0, write(5, 1, 42), Cycle(0));
        let resps = settle(&mut dev, &mut home, Cycle(0));
        assert_eq!(resps.len(), 1);
        let (_, L2ToL1::WriteAck(a)) = &resps[0] else {
            panic!("expected ack")
        };
        assert_eq!(a.version, Version(42));
        // Home is authoritative immediately.
        assert_eq!(home.memory_image(), vec![(BlockAddr(5), Version(42))]);
        // The ack installed the fresh grant: a local read of the stored
        // version needs no fabric trip.
        let before = home.stats().accesses;
        dev.on_request(0, read(5, 0, 2), Cycle(500));
        let resps = settle(&mut dev, &mut home, Cycle(500));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(f.version, Version(42));
        assert_eq!(home.stats().accesses, before, "served from the grant");
    }

    #[test]
    fn crash_wipes_grants_and_rejoin_reacquires() {
        let root = Sanitizer::enabled(Scope::Sm(0));
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.set_sanitizer(root.for_scope(Scope::Device(0)));
        home.set_sanitizer(root.for_scope(Scope::Home(0)));
        dev.on_request(0, write(5, 1, 42), Cycle(0));
        settle(&mut dev, &mut home, Cycle(0));
        dev.crash(Cycle(100));
        assert!(dev.needs_reset(), "crash must force the global bump");
        assert!(dev.is_idle(), "no transaction survives the crash");
        assert!(dev.installed_grant(BlockAddr(5)).is_none());
        // The simulator bumps the global epoch on home and all devices.
        home.apply_reset(1);
        dev.apply_reset(1);
        // Rejoin: the committed store survives at the home.
        dev.on_request(0, read(5, 0, 1), Cycle(200));
        let resps = settle(&mut dev, &mut home, Cycle(200));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(f.version, Version(42), "committed data survives");
        assert_eq!(f.epoch, 1);
        assert!(root.violations().is_empty(), "{:?}", root.violations());
    }

    #[test]
    fn merged_readers_all_complete() {
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.on_request(0, read(5, 0, 1), Cycle(0));
        dev.on_request(1, read(5, 0, 3), Cycle(0));
        dev.on_request(2, read(5, 0, 9), Cycle(0));
        let resps = settle(&mut dev, &mut home, Cycle(0));
        assert_eq!(resps.len(), 3);
        let mut dsts: Vec<usize> = resps.iter().map(|(d, _)| *d).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 1, 2]);
        assert!(dev.stats().mshr_merges >= 1, "readers share one grant trip");
        assert_eq!(home.stats().accesses, 1, "one fabric round trip");
    }

    #[test]
    fn far_waiter_forces_follow_up_grant_extension() {
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        // First waiter near, second far beyond the first grant: the
        // device must keep extending until everyone is covered.
        dev.on_request(0, read(5, 0, 1), Cycle(0));
        dev.on_request(1, read(5, 0, 500), Cycle(0));
        let resps = settle(&mut dev, &mut home, Cycle(0));
        assert_eq!(resps.len(), 2, "both readers complete");
        let (_, grts) = dev.installed_grant(BlockAddr(5)).unwrap();
        assert!(grts.0 >= 500, "grant covers the far waiter");
    }

    #[test]
    fn snapshot_round_trips_mid_transaction() {
        let mut dev = DeviceL2::new(DeviceParams::default());
        let mut home = HomeNode::new(HomeParams::default());
        dev.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut dev, &mut home, Cycle(0));
        // Leave parked waiters and queued traffic in place.
        dev.on_request(1, read(9, 0, 4), Cycle(100));
        dev.on_request(0, write(7, 2, 77), Cycle(100));
        dev.tick(Cycle(200));
        dev.tick(Cycle(201));
        assert!(!dev.is_idle());
        let mut w = SnapWriter::new();
        dev.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut copy = DeviceL2::new(DeviceParams::default());
        let mut r = SnapReader::new(&bytes);
        copy.load_state(&mut r).expect("restore");
        r.expect_end("device snapshot").expect("fully consumed");
        let mut w2 = SnapWriter::new();
        copy.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "save -> load -> save is stable");
        // Both replay the identical future against identical homes.
        let mut home2 = HomeNode::new(HomeParams::default());
        let mut wh = SnapWriter::new();
        home.save_state(&mut wh);
        let hb = wh.into_bytes();
        let mut rh = SnapReader::new(&hb);
        home2.load_state(&mut rh).expect("restore home");
        let a = settle(&mut dev, &mut home, Cycle(300));
        let b = settle(&mut copy, &mut home2, Cycle(300));
        assert_eq!(a, b);
    }
}
