//! Controller traits implemented by every coherence protocol.
//!
//! The GPU core model drives a per-SM [`L1Controller`]; the simulator
//! routes the requests it emits over the NoC to per-bank
//! [`L2Controller`]s, and DRAM responses back. Implementations:
//!
//! * `gtsc_core::{GtscL1, GtscL2}` — the paper's protocol;
//! * `gtsc_baselines::{TcL1, TcL2}` — Temporal Coherence (strong and weak);
//! * `gtsc_baselines::{BypassL1, PlainL2}` — the no-L1 baseline ("BL");
//! * `gtsc_baselines::NonCoherentL1` — "Baseline W/L1".

use gtsc_trace::{Sanitizer, SpanTracker, Tracer};
use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};
use gtsc_types::{BlockAddr, CacheStats, Cycle, SpanId, Timestamp, Version, WarpId};

use crate::msg::{Epoch, L1ToL2, L2ToL1};

/// Unique token identifying one in-flight memory access, assigned by the
/// SM and echoed back in the matching [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AccessId(pub u64);

/// Load, store, or read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A global-memory load.
    Load,
    /// A global-memory store.
    Store,
    /// A global-memory atomic (read-modify-write performed at the L2, as
    /// on real GPUs). The issuing warp blocks until the old value
    /// returns. Under G-TSC the RMW is timestamped like a store — it
    /// never stalls; under TC-Strong it must wait for every outstanding
    /// lease like any other write.
    Atomic,
}

/// One block-granular memory access issued by an SM's LDST unit (already
/// coalesced: one `MemAccess` per distinct block touched by the warp
/// instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Completion-matching token.
    pub id: AccessId,
    /// Issuing warp (within the SM).
    pub warp: WarpId,
    /// Load or store.
    pub kind: AccessKind,
    /// Block touched.
    pub block: BlockAddr,
    /// Causal-span identity when this access was sampled by the latency
    /// observatory; [`SpanId::NONE`] (the overwhelmingly common case)
    /// otherwise. Controllers copy it into the requests they emit.
    pub span: SpanId,
}

/// A finished memory access, reported by the L1 controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Token from the originating [`MemAccess`].
    pub id: AccessId,
    /// Issuing warp.
    pub warp: WarpId,
    /// Load or store.
    pub kind: AccessKind,
    /// Block touched.
    pub block: BlockAddr,
    /// Data version observed (loads) or published (stores).
    pub version: Version,
    /// Logical time of the operation, for timestamp-ordering protocols:
    /// the load's effective timestamp, or the store's assigned `wts`.
    /// `None` for physical-time and plain protocols.
    pub ts: Option<Timestamp>,
    /// Timestamp-reset epoch the operation executed in.
    pub epoch: Epoch,
    /// For atomics only: the version the read-modify-write *observed*
    /// (its read half). `None` for plain loads and stores.
    pub prev: Option<Version>,
}

/// Occupancy snapshot of a cache controller, reported by
/// [`L1Controller::pressure`] / [`L2Controller::pressure`] and assembled
/// into a stall diagnosis when the simulator's forward-progress watchdog
/// fires. Purely observational — reading it never perturbs timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerPressure {
    /// Outstanding misses (occupied MSHR entries).
    pub mshr: usize,
    /// Requests queued toward the next level (L1→NoC or L2→DRAM).
    pub out_queue: usize,
    /// Responses or acknowledgements waiting to drain.
    pub waiting: usize,
}

impl ControllerPressure {
    /// Whether anything at all is held inside the controller.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mshr == 0 && self.out_queue == 0 && self.waiting == 0
    }
}

impl std::fmt::Display for ControllerPressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mshr={} out_queue={} waiting={}",
            self.mshr, self.out_queue, self.waiting
        )
    }
}

/// Immediate result of presenting an access to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Outcome {
    /// Hit: completes after the L1 hit latency.
    Hit(Completion),
    /// Miss or write-through: a [`Completion`] will be produced later by
    /// [`L1Controller::on_response`] or [`L1Controller::tick`].
    Queued,
    /// Structural hazard (MSHR full, line locked and policy forbids
    /// queueing): the SM must retry the access on a later cycle.
    Reject,
}

/// Why an L1 controller is currently holding up its SM, as reported by
/// [`L1Controller::wait_hint`] for top-down cycle accounting
/// (DESIGN.md §15). Purely observational, like
/// [`ControllerPressure`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WaitHint {
    /// Nothing identifiable is blocking inside the controller.
    #[default]
    None,
    /// Outstanding work is dominated by a lease-expired refetch
    /// (a G-TSC coherence miss in flight).
    LeaseExpired,
    /// The MSHR file is full: new misses are being rejected.
    MshrFull,
    /// Requests are queued toward the NoC awaiting injection.
    NocBackpressure,
    /// Waiting on the memory system below the NoC (L2/DRAM round trip).
    Downstream,
}

/// A private (per-SM) cache controller.
///
/// The contract with the SM pipeline:
///
/// 1. The SM calls [`access`](L1Controller::access) once per coalesced
///    block access. `Hit` completes immediately (the SM applies the L1 hit
///    latency); `Queued` completes later; `Reject` must be retried.
/// 2. Each cycle, the simulator drains
///    [`take_request`](L1Controller::take_request) into the request NoC,
///    feeds arriving responses to
///    [`on_response`](L1Controller::on_response), and calls
///    [`tick`](L1Controller::tick); both of the latter may yield
///    completions.
/// 3. Fences additionally gate on
///    [`fence_ready`](L1Controller::fence_ready) (TC-Weak's GWCT rule).
/// 4. [`flush`](L1Controller::flush) is invoked at kernel boundaries
///    (GPU caches are flushed between kernels; Section V-D).
pub trait L1Controller {
    /// Presents a coalesced access; may complete, queue, or reject it.
    fn access(&mut self, acc: MemAccess, now: Cycle) -> L1Outcome;

    /// Delivers a response that arrived over the response NoC. Returns the
    /// accesses it completed.
    fn on_response(&mut self, msg: L2ToL1, now: Cycle) -> Vec<Completion>;

    /// Removes the next request destined for the L2, if any. The simulator
    /// routes it by [`L1ToL2::block`].
    fn take_request(&mut self) -> Option<L1ToL2>;

    /// Per-cycle housekeeping (expiry scans, retry of deferred renewals).
    /// May complete accesses (e.g. waiters whose lease arrived earlier).
    fn tick(&mut self, now: Cycle) -> Vec<Completion>;

    /// Whether `warp` may complete a fence *from the protocol's point of
    /// view* (the SM separately requires all of the warp's accesses to
    /// have completed). TC-Weak overrides this with the GWCT check.
    fn fence_ready(&self, warp: WarpId, now: Cycle) -> bool {
        let _ = (warp, now);
        true
    }

    /// Arms end-to-end retry: requests unanswered for `timeout` cycles
    /// are re-sent from [`tick`](L1Controller::tick). The simulator calls
    /// this only under loss-fault injection (a crashed bank consumes a
    /// request and then forgets it — only the requester can recover it).
    /// The default ignores the knob; controllers whose protocol tolerates
    /// duplicate requests override.
    fn enable_retry(&mut self, timeout: u64) {
        let _ = timeout;
    }

    /// Invalidates the entire cache and resets per-warp protocol state
    /// (kernel boundary).
    fn flush(&mut self);

    /// Whether no access is waiting inside the controller.
    fn is_idle(&self) -> bool;

    /// Counters accumulated so far.
    fn stats(&self) -> CacheStats;

    /// Occupancy snapshot for stall diagnosis. The default reports an
    /// empty controller; protocols with internal queues should override.
    fn pressure(&self) -> ControllerPressure {
        ControllerPressure::default()
    }

    /// Why the controller is holding up its SM right now, for top-down
    /// cycle accounting. The default derives a coarse answer from
    /// [`pressure`](L1Controller::pressure): queued requests read as
    /// NoC backpressure, outstanding misses as a downstream wait.
    /// Protocols with richer internal state override.
    fn wait_hint(&self) -> WaitHint {
        let p = self.pressure();
        if p.out_queue > 0 {
            WaitHint::NocBackpressure
        } else if p.mshr > 0 || p.waiting > 0 {
            WaitHint::Downstream
        } else {
            WaitHint::None
        }
    }

    /// Installs a protocol event tracer. Controllers that emit trace
    /// events override this; the default discards the tracer so plain
    /// implementations need no tracing plumbing.
    fn set_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }

    /// The installed tracer, for flight-recorder dumps. `None` when the
    /// controller does not trace.
    fn tracer(&self) -> Option<&Tracer> {
        None
    }

    /// Installs an online transition sanitizer (see
    /// `gtsc_trace::Sanitizer`). Controllers that report transitions
    /// override this; the default discards the handle so plain
    /// implementations need no checking plumbing.
    fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        let _ = sanitizer;
    }

    /// Installs a causal-span tracker (see `gtsc_trace::SpanTracker`).
    /// Controllers that annotate spans (MSHR merges, expiry refetches)
    /// override this; the default discards the handle — span chains
    /// self-heal around layers that do not report.
    fn set_span_tracker(&mut self, spans: SpanTracker) {
        let _ = spans;
    }

    /// Serializes the controller's dynamic state for a whole-simulator
    /// checkpoint (DESIGN.md §14). The default declines: only
    /// controllers that also implement
    /// [`load_state`](L1Controller::load_state) support checkpointing.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] from the default implementation.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        let _ = w;
        Err(SnapshotError::Unsupported {
            what: "this L1 controller does not checkpoint",
        })
    }

    /// Restores state saved by [`save_state`](L1Controller::save_state)
    /// into a controller freshly built from the same config.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] from the default implementation;
    /// decoding or mismatch errors from implementations.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Err(SnapshotError::Unsupported {
            what: "this L1 controller does not checkpoint",
        })
    }
}

/// A shared-cache bank controller.
///
/// Each cycle the simulator: delivers NoC request arrivals via
/// [`on_request`](L2Controller::on_request); calls
/// [`tick`](L2Controller::tick); moves
/// [`take_dram_request`](L2Controller::take_dram_request) into the DRAM
/// model (respecting back-pressure via
/// [`dram_ready`](L2Controller::dram_ready)); feeds DRAM completions to
/// [`on_dram_response`](L2Controller::on_dram_response); and drains
/// [`take_response`](L2Controller::take_response) into the response NoC.
pub trait L2Controller {
    /// Handles a request from SM `src`.
    fn on_request(&mut self, src: usize, msg: L1ToL2, now: Cycle);

    /// Next response to inject into the response network: `(dst SM, msg)`.
    fn take_response(&mut self) -> Option<(usize, L2ToL1)>;

    /// Next DRAM request: `(block, is_write)`. Only called when the DRAM
    /// queue can accept (the simulator checks first).
    fn take_dram_request(&mut self) -> Option<(BlockAddr, bool)>;

    /// Informs the controller whether DRAM can currently accept requests
    /// (so `tick` can decide to retry stalled evictions).
    fn dram_ready(&mut self, ready: bool) {
        let _ = ready;
    }

    /// Handles a DRAM completion for `block` (`is_write` distinguishes
    /// write-back completions, which usually need no action).
    fn on_dram_response(&mut self, block: BlockAddr, is_write: bool, now: Cycle);

    /// Per-cycle housekeeping (TC write-stall expiry, deferred work).
    fn tick(&mut self, now: Cycle);

    /// Whether this bank wants a global timestamp reset (G-TSC rollover,
    /// Section V-D). The simulator polls this and, if any bank requests a
    /// reset, calls [`apply_reset`](L2Controller::apply_reset) on *all*
    /// banks with the same new epoch.
    fn needs_reset(&self) -> bool {
        false
    }

    /// Performs the Section V-D timestamp reset, entering `epoch`.
    fn apply_reset(&mut self, epoch: Epoch) {
        let _ = epoch;
    }

    /// Crashes the bank: models a transient fault that wipes the tag
    /// array and all in-flight transaction state (data survives via
    /// DRAM / the functional backing image). Returns `true` if the
    /// controller supports crash/recovery — it must then report
    /// [`needs_reset`](L2Controller::needs_reset) so the simulator runs
    /// the global epoch bump that makes recovery safe. The default
    /// (timing baselines, plain protocols) ignores the fault and
    /// returns `false`.
    fn crash(&mut self, now: Cycle) -> bool {
        let _ = now;
        false
    }

    /// Whether no transaction is pending inside the bank.
    fn is_idle(&self) -> bool;

    /// Counters accumulated so far.
    fn stats(&self) -> CacheStats;

    /// The bank's current functional memory contents (resident lines plus
    /// written-back blocks), as `(block, version)` pairs. Used by the
    /// cross-protocol equivalence checker; timing models need not override.
    fn memory_image(&self) -> Vec<(BlockAddr, Version)> {
        Vec::new()
    }

    /// Occupancy snapshot for stall diagnosis. The default reports an
    /// empty controller; protocols with internal queues should override.
    fn pressure(&self) -> ControllerPressure {
        ControllerPressure::default()
    }

    /// Installs a protocol event tracer. Controllers that emit trace
    /// events override this; the default discards the tracer so plain
    /// implementations need no tracing plumbing.
    fn set_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }

    /// The installed tracer, for flight-recorder dumps. `None` when the
    /// controller does not trace.
    fn tracer(&self) -> Option<&Tracer> {
        None
    }

    /// Installs an online transition sanitizer (see
    /// `gtsc_trace::Sanitizer`). Controllers that report transitions
    /// override this; the default discards the handle so plain
    /// implementations need no checking plumbing.
    fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        let _ = sanitizer;
    }

    /// Installs a causal-span tracker (see `gtsc_trace::SpanTracker`).
    /// Banks that annotate spans (serve class, DRAM waits, crash
    /// closes) override this; the default discards the handle.
    fn set_span_tracker(&mut self, spans: SpanTracker) {
        let _ = spans;
    }

    /// Serializes the bank's dynamic state for a whole-simulator
    /// checkpoint (DESIGN.md §14). The default declines: only banks that
    /// also implement [`load_state`](L2Controller::load_state) support
    /// checkpointing.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] from the default implementation.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        let _ = w;
        Err(SnapshotError::Unsupported {
            what: "this L2 controller does not checkpoint",
        })
    }

    /// Restores state saved by [`save_state`](L2Controller::save_state)
    /// into a bank freshly built from the same config.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] from the default implementation;
    /// decoding or mismatch errors from implementations.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Err(SnapshotError::Unsupported {
            what: "this L2 controller does not checkpoint",
        })
    }
}

impl Snap for AccessId {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AccessId(r.u64()?))
    }
}

impl Snap for AccessKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::Atomic => 2,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(AccessKind::Load),
            1 => Ok(AccessKind::Store),
            2 => Ok(AccessKind::Atomic),
            other => Err(SnapshotError::Malformed {
                context: format!("AccessKind tag {other}"),
            }),
        }
    }
}

gtsc_types::snap_fields!(MemAccess {
    id,
    warp,
    kind,
    block,
    span
});
gtsc_types::snap_fields!(Completion {
    id,
    warp,
    kind,
    block,
    version,
    ts,
    epoch,
    prev,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_id_is_ordered() {
        assert!(AccessId(1) < AccessId(2));
        assert_eq!(AccessId::default(), AccessId(0));
    }

    /// The default `fence_ready` lets fences through (only the SM's
    /// outstanding-access rule applies), and default reset hooks are inert.
    #[test]
    fn trait_defaults() {
        struct Dummy;
        impl L1Controller for Dummy {
            fn access(&mut self, _: MemAccess, _: Cycle) -> L1Outcome {
                L1Outcome::Reject
            }
            fn on_response(&mut self, _: L2ToL1, _: Cycle) -> Vec<Completion> {
                Vec::new()
            }
            fn take_request(&mut self) -> Option<L1ToL2> {
                None
            }
            fn tick(&mut self, _: Cycle) -> Vec<Completion> {
                Vec::new()
            }
            fn flush(&mut self) {}
            fn is_idle(&self) -> bool {
                true
            }
            fn stats(&self) -> CacheStats {
                CacheStats::default()
            }
        }
        let d = Dummy;
        assert!(d.fence_ready(WarpId(0), Cycle(0)));

        struct DummyL2;
        impl L2Controller for DummyL2 {
            fn on_request(&mut self, _: usize, _: L1ToL2, _: Cycle) {}
            fn take_response(&mut self) -> Option<(usize, L2ToL1)> {
                None
            }
            fn take_dram_request(&mut self) -> Option<(BlockAddr, bool)> {
                None
            }
            fn on_dram_response(&mut self, _: BlockAddr, _: bool, _: Cycle) {}
            fn tick(&mut self, _: Cycle) {}
            fn is_idle(&self) -> bool {
                true
            }
            fn stats(&self) -> CacheStats {
                CacheStats::default()
            }
        }
        let mut d2 = DummyL2;
        assert!(!d2.needs_reset());
        d2.apply_reset(1);
        d2.dram_ready(true);
        // Default crash hook: fault is ignored, no recovery advertised.
        assert!(!d2.crash(Cycle(3)));
        assert!(d.pressure().is_empty());
        assert!(d2.pressure().is_empty());
        assert_eq!(d2.pressure().to_string(), "mshr=0 out_queue=0 waiting=0");
        // Default tracer hooks: discard on install, report nothing.
        let mut d = d;
        d.set_tracer(Tracer::default());
        d2.set_tracer(Tracer::default());
        assert!(d.tracer().is_none());
        assert!(d2.tracer().is_none());
        // Default sanitizer hooks likewise discard the handle.
        d.set_sanitizer(Sanitizer::default());
        d2.set_sanitizer(Sanitizer::default());
        // Default span hooks discard too, and the default wait hint is
        // derived from the (empty) pressure report.
        d.set_span_tracker(SpanTracker::default());
        d2.set_span_tracker(SpanTracker::default());
        assert_eq!(d.wait_hint(), WaitHint::None);
    }
}
