//! Coherence messages exchanged between private L1 caches and shared L2
//! banks, matching Table I of the paper.
//!
//! | Message                     | rts | wts | warp_ts | data |
//! |-----------------------------|-----|-----|---------|------|
//! | Read/Renewal request (BusRd)|     |  ✓  |    ✓    |      |
//! | Write request (BusWr)       |     |     |    ✓    |  ✓   |
//! | Fill response (BusFill)     |  ✓  |  ✓  |         |  ✓   |
//! | Renewal response (BusRnw)   |  ✓  |     |         |      |
//! | Write ack (BusWrAck)        |  ✓  |  ✓  |         |      |
//!
//! The same wire format carries the Temporal-Coherence baselines: TC's
//! physical-time leases ride in [`LeaseInfo::Physical`] and its GWCT in
//! the write ack, and the timestamp fields simply contribute no bytes for
//! the no-coherence baselines ([`LeaseInfo::None`]).

use gtsc_types::{BlockAddr, Cycle, SpanId, Timestamp, Version};

/// A timestamp-reset epoch (Section V-D).
///
/// Every G-TSC message carries the sending bank's epoch; an L1 receiving a
/// response from a newer epoch flushes itself and resets its warp
/// timestamps before consuming the response.
pub type Epoch = u64;

/// Lease information attached to a response, in the coordinate system of
/// the protocol that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseInfo {
    /// G-TSC: a logical-time window `[wts, rts]`.
    Logical {
        /// Write timestamp of the data version supplied.
        wts: Timestamp,
        /// Last logical instant at which the version may be read.
        rts: Timestamp,
    },
    /// Temporal Coherence: an absolute physical expiry time.
    Physical {
        /// Cycle at which the lease expires (self-invalidation point).
        expires: Cycle,
    },
    /// No lease (plain caches / no-L1 baseline).
    None,
}

/// Read or renewal request (`BusRd`), L1 → L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReq {
    /// Requested block.
    pub block: BlockAddr,
    /// `wts` of the copy the L1 already holds; [`Timestamp`] `0` when the
    /// tag check failed (no copy). Lets the L2 distinguish a renewal from
    /// a stale copy (Figure 4).
    pub wts: Timestamp,
    /// Timestamp of the requesting warp.
    pub warp_ts: Timestamp,
    /// Requester's epoch.
    pub epoch: Epoch,
    /// Causal-span identity of the sampled access that produced this
    /// request; [`SpanId::NONE`] on the unsampled fast path. Pure
    /// instrumentation metadata — contributes zero bytes to
    /// [`MsgSizes`] accounting (DESIGN.md §15).
    pub span: SpanId,
}

/// Write request (`BusWr`), L1 → L2. L1 is write-through, so every store
/// reaches the L2 (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReq {
    /// Block being written.
    pub block: BlockAddr,
    /// Timestamp of the writing warp.
    pub warp_ts: Timestamp,
    /// The data version this store will publish.
    pub version: Version,
    /// Requester's epoch.
    pub epoch: Epoch,
    /// Causal-span identity ([`SpanId::NONE`] when unsampled); zero
    /// wire bytes.
    pub span: SpanId,
}

/// Fill response (`BusFill`), L2 → L1: data plus its lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillResp {
    /// Filled block.
    pub block: BlockAddr,
    /// Lease granted for the data.
    pub lease: LeaseInfo,
    /// The data version supplied.
    pub version: Version,
    /// Producing bank's epoch (reset signal when it advances).
    pub epoch: Epoch,
    /// Echo of the request's causal span ([`SpanId::NONE`] when
    /// unsampled); zero wire bytes.
    pub span: SpanId,
}

/// Write acknowledgment (`BusWrAck`), L2 → L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAckResp {
    /// Block whose store completed.
    pub block: BlockAddr,
    /// Lease assigned to the newly written version (G-TSC) — or, for
    /// TC-Weak, [`LeaseInfo::Physical`] carrying the Global Write
    /// Completion Time.
    pub lease: LeaseInfo,
    /// The version that was committed.
    pub version: Version,
    /// Producing bank's epoch.
    pub epoch: Epoch,
    /// Echo of the request's causal span ([`SpanId::NONE`] when
    /// unsampled); zero wire bytes.
    pub span: SpanId,
}

/// Requests travelling the SM→L2 network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1ToL2 {
    /// Read or renewal request.
    Read(ReadReq),
    /// Write-through store.
    Write(WriteReq),
    /// Read-modify-write performed at the L2 (GPU atomics). Reuses the
    /// write-request fields; the response additionally returns the value
    /// the RMW observed.
    Atomic(WriteReq),
}

impl L1ToL2 {
    /// Block the request addresses (used for bank routing).
    #[must_use]
    pub fn block(&self) -> BlockAddr {
        match self {
            L1ToL2::Read(r) => r.block,
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => w.block,
        }
    }

    /// Causal span carried by the request ([`SpanId::NONE`] when
    /// unsampled).
    #[must_use]
    pub fn span(&self) -> SpanId {
        match self {
            L1ToL2::Read(r) => r.span,
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => w.span,
        }
    }
}

/// Responses travelling the L2→SM network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2ToL1 {
    /// Data fill.
    Fill(FillResp),
    /// Renewal: extends the lease of a copy the L1 already holds —
    /// crucially, carries **no data** (the G-TSC traffic saving of
    /// Section VI-C).
    Renew {
        /// Renewed block.
        block: BlockAddr,
        /// New lease for the existing copy.
        lease: LeaseInfo,
        /// Producing bank's epoch.
        epoch: Epoch,
        /// Echo of the request's causal span; zero wire bytes.
        span: SpanId,
    },
    /// Store acknowledgment.
    WriteAck(WriteAckResp),
    /// Atomic completion: the store acknowledgment plus the version the
    /// read half observed.
    AtomicAck {
        /// The acknowledgment for the write half.
        ack: WriteAckResp,
        /// What the read half observed (the previous version).
        prev: Version,
    },
    /// Recall: invalidate any private copy of `block`. Never sent by
    /// baseline G-TSC (non-inclusive, Section V-C); used only by the
    /// inclusive-L2 ablation to model the recall traffic inclusion costs.
    Invalidate {
        /// Block to drop.
        block: BlockAddr,
        /// Producing bank's epoch.
        epoch: Epoch,
        /// Causal span, when a sampled request triggered the recall;
        /// zero wire bytes.
        span: SpanId,
    },
}

impl L2ToL1 {
    /// Block the response addresses.
    #[must_use]
    pub fn block(&self) -> BlockAddr {
        match self {
            L2ToL1::Fill(f) => f.block,
            L2ToL1::Renew { block, .. } => *block,
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => a.block,
            L2ToL1::Invalidate { block, .. } => *block,
        }
    }

    /// The epoch stamped on the response.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        match self {
            L2ToL1::Fill(f) => f.epoch,
            L2ToL1::Renew { epoch, .. } => *epoch,
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => a.epoch,
            L2ToL1::Invalidate { epoch, .. } => *epoch,
        }
    }

    /// Causal span echoed on the response ([`SpanId::NONE`] when
    /// unsampled).
    #[must_use]
    pub fn span(&self) -> SpanId {
        match self {
            L2ToL1::Fill(f) => f.span,
            L2ToL1::Renew { span, .. } => *span,
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => a.span,
            L2ToL1::Invalidate { span, .. } => *span,
        }
    }
}

/// On-wire size calculator for NoC traffic accounting.
///
/// # Examples
///
/// ```
/// use gtsc_protocol::msg::MsgSizes;
/// let s = MsgSizes::new(8, 16, 128);
/// assert_eq!(s.ts_bytes, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSizes {
    /// Header bytes on every packet (address, opcode, routing).
    pub header: usize,
    /// Bytes per timestamp field (`ts_bits / 8`, rounded up).
    pub ts_bytes: usize,
    /// Data block size in bytes.
    pub block_bytes: usize,
}

impl MsgSizes {
    /// Builds sizes from a timestamp width in bits and block size in bytes.
    #[must_use]
    pub fn new(header: usize, ts_bits: u32, block_bytes: usize) -> Self {
        MsgSizes {
            header,
            ts_bytes: (ts_bits as usize).div_ceil(8),
            block_bytes,
        }
    }

    fn lease_bytes(&self, lease: &LeaseInfo, fields: usize) -> usize {
        match lease {
            LeaseInfo::Logical { .. } | LeaseInfo::Physical { .. } => fields * self.ts_bytes,
            LeaseInfo::None => 0,
        }
    }

    /// Size of a request per Table I.
    #[must_use]
    pub fn request_bytes(&self, msg: &L1ToL2) -> usize {
        match msg {
            // BusRd: wts + warp_ts.
            L1ToL2::Read(_) => self.header + 2 * self.ts_bytes,
            // BusWr: warp_ts + data.
            L1ToL2::Write(_) => self.header + self.ts_bytes + self.block_bytes,
            // Atomic: warp_ts + a word-sized operand (16 B budget).
            L1ToL2::Atomic(_) => self.header + self.ts_bytes + 16,
        }
    }

    /// Size of a response per Table I.
    #[must_use]
    pub fn response_bytes(&self, msg: &L2ToL1) -> usize {
        match msg {
            // BusFill: rts + wts + data.
            L2ToL1::Fill(f) => self.header + self.lease_bytes(&f.lease, 2) + self.block_bytes,
            // BusRnw: rts only — no data.
            L2ToL1::Renew { lease, .. } => self.header + self.lease_bytes(lease, 1),
            // BusWrAck: rts + wts.
            L2ToL1::WriteAck(a) => self.header + self.lease_bytes(&a.lease, 2),
            // Atomic ack: rts + wts + the old word (16 B budget).
            L2ToL1::AtomicAck { ack, .. } => self.header + self.lease_bytes(&ack.lease, 2) + 16,
            // Recall: header only.
            L2ToL1::Invalidate { .. } => self.header,
        }
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

// Snapshot encodings (DESIGN.md §14): messages sit inside checkpointed
// queues (L1 out-queues, NoC in-flight sets, transport retransmit
// buffers), so the whole wire vocabulary must round-trip.
impl Snap for LeaseInfo {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            LeaseInfo::Logical { wts, rts } => {
                w.u8(0);
                wts.save(w);
                rts.save(w);
            }
            LeaseInfo::Physical { expires } => {
                w.u8(1);
                expires.save(w);
            }
            LeaseInfo::None => w.u8(2),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(LeaseInfo::Logical {
                wts: Snap::load(r)?,
                rts: Snap::load(r)?,
            }),
            1 => Ok(LeaseInfo::Physical {
                expires: Snap::load(r)?,
            }),
            2 => Ok(LeaseInfo::None),
            other => Err(SnapshotError::Malformed {
                context: format!("LeaseInfo tag {other}"),
            }),
        }
    }
}

gtsc_types::snap_fields!(ReadReq {
    block,
    wts,
    warp_ts,
    epoch,
    span
});
gtsc_types::snap_fields!(WriteReq {
    block,
    warp_ts,
    version,
    epoch,
    span
});
gtsc_types::snap_fields!(FillResp {
    block,
    lease,
    version,
    epoch,
    span
});
gtsc_types::snap_fields!(WriteAckResp {
    block,
    lease,
    version,
    epoch,
    span
});

impl Snap for L1ToL2 {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            L1ToL2::Read(m) => {
                w.u8(0);
                m.save(w);
            }
            L1ToL2::Write(m) => {
                w.u8(1);
                m.save(w);
            }
            L1ToL2::Atomic(m) => {
                w.u8(2);
                m.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(L1ToL2::Read(Snap::load(r)?)),
            1 => Ok(L1ToL2::Write(Snap::load(r)?)),
            2 => Ok(L1ToL2::Atomic(Snap::load(r)?)),
            other => Err(SnapshotError::Malformed {
                context: format!("L1ToL2 tag {other}"),
            }),
        }
    }
}

impl Snap for L2ToL1 {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            L2ToL1::Fill(m) => {
                w.u8(0);
                m.save(w);
            }
            L2ToL1::Renew {
                block,
                lease,
                epoch,
                span,
            } => {
                w.u8(1);
                block.save(w);
                lease.save(w);
                epoch.save(w);
                span.save(w);
            }
            L2ToL1::WriteAck(m) => {
                w.u8(2);
                m.save(w);
            }
            L2ToL1::AtomicAck { ack, prev } => {
                w.u8(3);
                ack.save(w);
                prev.save(w);
            }
            L2ToL1::Invalidate { block, epoch, span } => {
                w.u8(4);
                block.save(w);
                epoch.save(w);
                span.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(L2ToL1::Fill(Snap::load(r)?)),
            1 => Ok(L2ToL1::Renew {
                block: Snap::load(r)?,
                lease: Snap::load(r)?,
                epoch: Snap::load(r)?,
                span: Snap::load(r)?,
            }),
            2 => Ok(L2ToL1::WriteAck(Snap::load(r)?)),
            3 => Ok(L2ToL1::AtomicAck {
                ack: Snap::load(r)?,
                prev: Snap::load(r)?,
            }),
            4 => Ok(L2ToL1::Invalidate {
                block: Snap::load(r)?,
                epoch: Snap::load(r)?,
                span: Snap::load(r)?,
            }),
            other => Err(SnapshotError::Malformed {
                context: format!("L2ToL1 tag {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> MsgSizes {
        MsgSizes::new(8, 16, 128)
    }

    fn logical() -> LeaseInfo {
        LeaseInfo::Logical {
            wts: Timestamp(1),
            rts: Timestamp(11),
        }
    }

    /// Table I check: which fields each message carries (encoded as size).
    #[test]
    fn table1_message_fields() {
        let s = sizes();
        let rd = L1ToL2::Read(ReadReq {
            block: BlockAddr(1),
            wts: Timestamp(0),
            warp_ts: Timestamp(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert_eq!(s.request_bytes(&rd), 8 + 2 + 2); // wts + warp_ts

        let wr = L1ToL2::Write(WriteReq {
            block: BlockAddr(1),
            warp_ts: Timestamp(1),
            version: Version(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert_eq!(s.request_bytes(&wr), 8 + 2 + 128); // warp_ts + data

        let fill = L2ToL1::Fill(FillResp {
            block: BlockAddr(1),
            lease: logical(),
            version: Version(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert_eq!(s.response_bytes(&fill), 8 + 4 + 128); // rts + wts + data

        let rnw = L2ToL1::Renew {
            block: BlockAddr(1),
            lease: logical(),
            epoch: 0,
            span: SpanId::NONE,
        };
        assert_eq!(s.response_bytes(&rnw), 8 + 2); // rts only, NO data

        let ack = L2ToL1::WriteAck(WriteAckResp {
            block: BlockAddr(1),
            lease: logical(),
            version: Version(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert_eq!(s.response_bytes(&ack), 8 + 4); // rts + wts
    }

    #[test]
    fn renewal_is_much_smaller_than_fill() {
        let s = sizes();
        let rnw = L2ToL1::Renew {
            block: BlockAddr(1),
            lease: logical(),
            epoch: 0,
            span: SpanId::NONE,
        };
        let fill = L2ToL1::Fill(FillResp {
            block: BlockAddr(1),
            lease: logical(),
            version: Version(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert!(s.response_bytes(&fill) > 10 * s.response_bytes(&rnw));
    }

    #[test]
    fn plain_protocol_messages_carry_no_timestamps() {
        let s = sizes();
        let fill = L2ToL1::Fill(FillResp {
            block: BlockAddr(1),
            lease: LeaseInfo::None,
            version: Version(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert_eq!(s.response_bytes(&fill), 8 + 128);
    }

    #[test]
    fn block_and_epoch_accessors() {
        let rnw = L2ToL1::Renew {
            block: BlockAddr(9),
            lease: LeaseInfo::None,
            epoch: 3,
            span: SpanId::NONE,
        };
        assert_eq!(rnw.block(), BlockAddr(9));
        assert_eq!(rnw.epoch(), 3);
        let rd = L1ToL2::Read(ReadReq {
            block: BlockAddr(4),
            wts: Timestamp(0),
            warp_ts: Timestamp(1),
            epoch: 0,
            span: SpanId::NONE,
        });
        assert_eq!(rd.block(), BlockAddr(4));
    }

    #[test]
    fn ts_bytes_rounds_up() {
        assert_eq!(MsgSizes::new(8, 12, 128).ts_bytes, 2);
        assert_eq!(MsgSizes::new(8, 32, 128).ts_bytes, 4);
    }
}
