//! Protocol-facing interfaces of the simulated memory hierarchy.
//!
//! This crate defines the *contract* between the GPU core model
//! (`gtsc-gpu`), the private-cache controllers, and the shared-cache
//! controllers, without committing to any particular coherence protocol:
//!
//! * [`msg`] — the coherence messages of Table I (`BusRd`, `BusWr`,
//!   `BusFill`, `BusRnw`, `BusWrAck`) with per-protocol lease payloads and
//!   exact on-wire sizes (used for NoC traffic accounting);
//! * [`api`] — the [`api::L1Controller`] and
//!   [`api::L2Controller`] traits implemented by G-TSC
//!   (`gtsc-core`), TC/TC-Weak and the baselines (`gtsc-baselines`).
//!
//! The same SM pipeline, NoC, and DRAM models drive every protocol through
//! these traits, so measured differences are attributable to the protocol
//! alone — the property the paper's evaluation relies on.

pub mod api;
pub mod msg;

pub use api::{
    AccessId, AccessKind, Completion, ControllerPressure, L1Controller, L1Outcome, L2Controller,
    MemAccess, WaitHint,
};
pub use msg::{
    Epoch, FillResp, L1ToL2, L2ToL1, LeaseInfo, MsgSizes, ReadReq, WriteAckResp, WriteReq,
};
