//! Memory-system substrate for the G-TSC reproduction: set-associative tag
//! arrays with LRU replacement, miss-status holding registers (MSHRs), and
//! a banked DRAM timing model.
//!
//! These structures are protocol-agnostic: the coherence protocols in
//! `gtsc-core` and `gtsc-baselines` store their per-line state (timestamps,
//! leases, pending-write locks) in the generic metadata parameter of
//! [`TagArray`].
//!
//! # Examples
//!
//! ```
//! use gtsc_mem::TagArray;
//! use gtsc_types::{BlockAddr, CacheGeometry};
//!
//! let mut tags: TagArray<u32> = TagArray::new(CacheGeometry::new(1024, 2, 128));
//! assert!(tags.fill(BlockAddr(7), 42).is_none()); // no eviction needed
//! assert_eq!(tags.probe(BlockAddr(7)).unwrap().meta, 42);
//! ```

pub mod dram;
pub mod mshr;
pub mod tag_array;

pub use dram::{Dram, DramRequest, DramResponse};
pub use mshr::{Mshr, MshrAlloc};
pub use tag_array::{EvictedLine, Line, TagArray};
