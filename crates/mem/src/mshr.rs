//! Miss-status holding registers.
//!
//! GPGPU-Sim's MSHR table (Section II-A of the paper) allows a single
//! outstanding read request per cache block: the first miss to a block
//! allocates an entry and sends one request to the next level; later
//! misses to the same block *merge* into the entry and are serviced
//! together when the response returns. This is also where G-TSC's
//! request-combining policy (Section V-B) lives: merged waiters whose
//! `warp_ts` falls outside the returned lease re-issue a renewal.

use std::collections::HashMap;

use gtsc_types::BlockAddr;

/// Result of attempting to register a miss in the MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// A fresh entry was allocated — the caller must send the request to
    /// the next cache level.
    AllocatedNew,
    /// Merged into an existing entry — a request is already in flight.
    Merged,
    /// The table (or the entry's merge capacity) is full: structural stall.
    Full,
}

/// A bounded MSHR table mapping blocks to lists of waiting requests.
///
/// `W` is the waiter payload (which warp is waiting, with which `warp_ts`,
/// load or store, ...). The table enforces both an entry limit and a
/// per-entry merge limit, matching GPGPU-Sim.
///
/// # Examples
///
/// ```
/// use gtsc_mem::{Mshr, MshrAlloc};
/// use gtsc_types::BlockAddr;
///
/// let mut m: Mshr<&str> = Mshr::new(2, 2);
/// assert_eq!(m.register(BlockAddr(1), "w0"), MshrAlloc::AllocatedNew);
/// assert_eq!(m.register(BlockAddr(1), "w1"), MshrAlloc::Merged);
/// assert_eq!(m.register(BlockAddr(1), "w2"), MshrAlloc::Full); // merge cap
/// let waiters = m.take(BlockAddr(1));
/// assert_eq!(waiters, vec!["w0", "w1"]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    entries: HashMap<BlockAddr, Vec<W>>,
    max_entries: usize,
    max_merges: usize,
}

impl<W> Mshr<W> {
    /// Creates a table with `max_entries` blocks tracked and up to
    /// `max_merges` waiters per block (the first requester counts).
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    #[must_use]
    pub fn new(max_entries: usize, max_merges: usize) -> Self {
        assert!(
            max_entries > 0 && max_merges > 0,
            "MSHR limits must be nonzero"
        );
        Mshr {
            entries: HashMap::new(),
            max_entries,
            max_merges,
        }
    }

    /// Registers a miss on `block` carrying `waiter`.
    pub fn register(&mut self, block: BlockAddr, waiter: W) -> MshrAlloc {
        if let Some(list) = self.entries.get_mut(&block) {
            if list.len() >= self.max_merges {
                return MshrAlloc::Full;
            }
            list.push(waiter);
            return MshrAlloc::Merged;
        }
        if self.entries.len() >= self.max_entries {
            return MshrAlloc::Full;
        }
        self.entries.insert(block, vec![waiter]);
        MshrAlloc::AllocatedNew
    }

    /// Whether an entry for `block` is outstanding.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.entries.contains_key(&block)
    }

    /// Removes the entry for `block` and returns its waiters in arrival
    /// order (empty if no entry existed).
    pub fn take(&mut self, block: BlockAddr) -> Vec<W> {
        self.entries.remove(&block).unwrap_or_default()
    }

    /// Re-registers waiters on an *existing or new* entry without the
    /// "send request" contract — used when a returned lease did not cover
    /// every merged waiter and a renewal must be re-issued for the rest.
    /// Returns `true` if a new entry had to be allocated (caller sends the
    /// renewal request), `false` if merged into a live entry.
    ///
    /// Unlike [`Mshr::register`], this never refuses: re-queued waiters
    /// were already admitted once and dropping them would lose requests.
    pub fn requeue(&mut self, block: BlockAddr, waiters: Vec<W>) -> bool {
        match self.entries.get_mut(&block) {
            Some(list) => {
                list.extend(waiters);
                false
            }
            None => {
                self.entries.insert(block, waiters);
                true
            }
        }
    }

    /// Waiters currently registered for `block`.
    #[must_use]
    pub fn waiters(&self, block: BlockAddr) -> usize {
        self.entries.get(&block).map_or(0, Vec::len)
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether no further entry can be allocated.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }

    /// Outstanding blocks, sorted: the table is hash-keyed, and callers
    /// walk this list on result-affecting paths (crash recovery drains
    /// waiters in this order), so raw map-iteration order must never
    /// leak out.
    #[must_use]
    pub fn blocks(&self) -> Vec<BlockAddr> {
        // lint: allow(hash-iter): sorted before anything observes the order.
        let mut blocks: Vec<BlockAddr> = self.entries.keys().copied().collect();
        blocks.sort_unstable();
        blocks
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl<W: Snap> Mshr<W> {
    /// Serializes the outstanding entries (sorted by block for byte
    /// stability). The entry/merge limits are config-derived and come
    /// from the table being restored into.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.entries.save(w);
    }

    /// Restores outstanding entries into this table.
    ///
    /// # Errors
    ///
    /// Any decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.entries = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_merge_full_cycle() {
        let mut m: Mshr<u32> = Mshr::new(1, 8);
        assert_eq!(m.register(BlockAddr(1), 0), MshrAlloc::AllocatedNew);
        assert_eq!(m.register(BlockAddr(2), 1), MshrAlloc::Full); // entry cap
        assert_eq!(m.register(BlockAddr(1), 2), MshrAlloc::Merged);
        assert_eq!(m.waiters(BlockAddr(1)), 2);
        assert_eq!(m.take(BlockAddr(1)), vec![0, 2]);
        assert!(m.is_empty());
        assert!(!m.contains(BlockAddr(1)));
    }

    #[test]
    fn take_missing_is_empty() {
        let mut m: Mshr<u32> = Mshr::new(4, 4);
        assert!(m.take(BlockAddr(9)).is_empty());
    }

    #[test]
    fn requeue_allocates_or_merges() {
        let mut m: Mshr<u32> = Mshr::new(2, 2);
        assert!(m.requeue(BlockAddr(3), vec![7, 8]));
        assert!(!m.requeue(BlockAddr(3), vec![9]));
        assert_eq!(m.take(BlockAddr(3)), vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_limits_rejected() {
        let _: Mshr<u32> = Mshr::new(0, 1);
    }

    proptest! {
        /// No waiter is ever lost or duplicated: everything successfully
        /// registered comes back from `take` exactly once.
        #[test]
        fn conservation(ops in proptest::collection::vec((0u64..8, 0u32..1000), 1..200)) {
            let mut m: Mshr<u32> = Mshr::new(4, 4);
            let mut admitted: Vec<u32> = Vec::new();
            let mut returned: Vec<u32> = Vec::new();
            for (i, (b, w)) in ops.iter().enumerate() {
                match m.register(BlockAddr(*b), *w) {
                    MshrAlloc::Full => {}
                    _ => admitted.push(*w),
                }
                if i % 5 == 4 {
                    returned.extend(m.take(BlockAddr(*b)));
                }
            }
            for b in m.blocks() {
                returned.extend(m.take(b));
            }
            admitted.sort_unstable();
            returned.sort_unstable();
            prop_assert_eq!(admitted, returned);
        }
    }
}
