//! Set-associative tag array with true-LRU replacement and pluggable
//! per-line metadata.

use gtsc_types::{BlockAddr, CacheGeometry};

/// One resident cache line: the block it holds plus protocol metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line<M> {
    /// Which block this line caches.
    pub block: BlockAddr,
    /// Protocol-specific state (timestamps, lease expiry, lock bits...).
    pub meta: M,
    last_use: u64,
}

/// A line that [`TagArray::fill`] displaced to make room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine<M> {
    /// The displaced block.
    pub block: BlockAddr,
    /// Its metadata at eviction time (needed e.g. to fold `rts` into
    /// `mem_ts` per Figure 6 of the paper).
    pub meta: M,
}

/// A set-associative tag array with true-LRU replacement.
///
/// The array stores no data payload — the simulator tracks data as
/// [`gtsc_types::Version`]s inside the metadata. Replacement is true LRU
/// via a monotone use counter.
///
/// # Examples
///
/// ```
/// use gtsc_mem::TagArray;
/// use gtsc_types::{BlockAddr, CacheGeometry};
///
/// // Direct-mapped, 2 sets.
/// let mut t: TagArray<&str> = TagArray::new(CacheGeometry::new(256, 1, 128));
/// t.fill(BlockAddr(0), "a");
/// let evicted = t.fill(BlockAddr(2), "b").expect("same set, way conflict");
/// assert_eq!(evicted.meta, "a");
/// ```
#[derive(Debug, Clone)]
pub struct TagArray<M> {
    geom: CacheGeometry,
    sets: Vec<Vec<Option<Line<M>>>>,
    use_counter: u64,
}

impl<M> TagArray<M> {
    /// Creates an empty tag array with the given geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = (0..geom.n_sets())
            .map(|_| (0..geom.ways()).map(|_| None).collect())
            .collect();
        TagArray {
            geom,
            sets,
            use_counter: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        self.geom.set_of(block)
    }

    /// Looks up `block` without updating LRU state.
    #[must_use]
    pub fn peek(&self, block: BlockAddr) -> Option<&Line<M>> {
        self.sets[self.set_of(block)]
            .iter()
            .flatten()
            .find(|l| l.block == block)
    }

    /// Looks up `block` and, on a hit, marks the line most-recently used.
    pub fn probe(&mut self, block: BlockAddr) -> Option<&Line<M>> {
        self.probe_mut(block).map(|l| &*l)
    }

    /// Mutable lookup; on a hit marks the line most-recently used.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut Line<M>> {
        let set = self.set_of(block);
        self.use_counter += 1;
        let stamp = self.use_counter;
        let found = self.sets[set]
            .iter_mut()
            .flatten()
            .find(|l| l.block == block);
        if let Some(l) = found {
            l.last_use = stamp;
            Some(l)
        } else {
            None
        }
    }

    /// Mutable access to a resident line *without* touching LRU state
    /// (for response handling that should not perturb replacement).
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut Line<M>> {
        let set = self.set_of(block);
        self.sets[set]
            .iter_mut()
            .flatten()
            .find(|l| l.block == block)
    }

    /// Inserts `block` with `meta`, evicting the LRU line of the set if the
    /// set is full. If `block` is already resident its metadata is replaced
    /// in place (no eviction). Returns the displaced line, if any.
    pub fn fill(&mut self, block: BlockAddr, meta: M) -> Option<EvictedLine<M>> {
        match self.fill_if(block, meta, |_| true) {
            Ok(evicted) => evicted,
            Err(_) => unreachable!("unconditional fill cannot be refused"),
        }
    }

    /// Like [`TagArray::fill`] but only lines for which `evictable` returns
    /// `true` may be displaced. Returns `Err(meta)` (handing the metadata
    /// back) if the set is full of unevictable lines — the TC inclusive-L2
    /// replacement stall of Section II-D3.
    ///
    /// # Errors
    ///
    /// Returns the rejected metadata when no victim is evictable.
    pub fn fill_if(
        &mut self,
        block: BlockAddr,
        meta: M,
        evictable: impl Fn(&Line<M>) -> bool,
    ) -> Result<Option<EvictedLine<M>>, M> {
        let set = self.set_of(block);
        self.use_counter += 1;
        let stamp = self.use_counter;
        let ways = &mut self.sets[set];

        if let Some(slot) = ways.iter_mut().flatten().find(|l| l.block == block) {
            slot.meta = meta;
            slot.last_use = stamp;
            return Ok(None);
        }
        if let Some(empty) = ways.iter_mut().find(|w| w.is_none()) {
            *empty = Some(Line {
                block,
                meta,
                last_use: stamp,
            });
            return Ok(None);
        }
        // Choose the LRU line among evictable candidates.
        let victim_way = ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.as_ref().is_some_and(&evictable))
            .min_by_key(|(_, w)| w.as_ref().map(|l| l.last_use))
            .map(|(i, _)| i);
        match victim_way {
            Some(i) => {
                let old = ways[i].replace(Line {
                    block,
                    meta,
                    last_use: stamp,
                });
                Ok(old.map(|l| EvictedLine {
                    block: l.block,
                    meta: l.meta,
                }))
            }
            None => Err(meta),
        }
    }

    /// Removes `block` if resident, returning its line.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<Line<M>> {
        let set = self.set_of(block);
        self.sets[set]
            .iter_mut()
            .find(|w| w.as_ref().is_some_and(|l| l.block == block))
            .and_then(Option::take)
    }

    /// Empties the whole array (kernel-boundary flush), returning the lines.
    pub fn flush(&mut self) -> Vec<Line<M>> {
        self.sets
            .iter_mut()
            .flat_map(|set| set.iter_mut().filter_map(Option::take))
            .collect()
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &Line<M>> {
        self.sets.iter().flat_map(|s| s.iter().flatten())
    }

    /// Mutable iteration over all resident lines (used by the timestamp
    /// rollover reset of Section V-D).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Line<M>> {
        self.sets.iter_mut().flat_map(|s| s.iter_mut().flatten())
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }

    /// Whether no line is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl<M: Snap> Snap for Line<M> {
    fn save(&self, w: &mut SnapWriter) {
        self.block.save(w);
        self.meta.save(w);
        w.u64(self.last_use);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Line {
            block: Snap::load(r)?,
            meta: Snap::load(r)?,
            last_use: r.u64()?,
        })
    }
}

impl<M: Snap> TagArray<M> {
    /// Serializes the dynamic state (resident lines + LRU counter). The
    /// geometry is config-derived and must be re-supplied on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.use_counter);
        self.sets.save(w);
    }

    /// Restores the dynamic state into an array of matching geometry.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] if the saved set/way shape differs
    /// from this array's geometry; any decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let use_counter = r.u64()?;
        let sets: Vec<Vec<Option<Line<M>>>> = Snap::load(r)?;
        if sets.len() != self.sets.len()
            || sets
                .iter()
                .zip(self.sets.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(SnapshotError::Mismatch {
                what: "tag array geometry".to_owned(),
            });
        }
        self.use_counter = use_counter;
        self.sets = sets;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> TagArray<u32> {
        // 2 sets, 2 ways.
        TagArray::new(CacheGeometry::new(512, 2, 128))
    }

    #[test]
    fn fill_probe_roundtrip() {
        let mut t = tiny();
        assert!(t.fill(BlockAddr(4), 1).is_none());
        assert_eq!(t.probe(BlockAddr(4)).unwrap().meta, 1);
        assert!(t.probe(BlockAddr(6)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn refill_replaces_in_place() {
        let mut t = tiny();
        t.fill(BlockAddr(4), 1);
        assert!(t.fill(BlockAddr(4), 2).is_none());
        assert_eq!(t.probe(BlockAddr(4)).unwrap().meta, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = tiny();
        // Set 0 holds even blocks: 0, 2, 4 conflict (2 ways).
        t.fill(BlockAddr(0), 10);
        t.fill(BlockAddr(2), 20);
        t.probe(BlockAddr(0)); // 2 becomes LRU
        let ev = t.fill(BlockAddr(4), 30).expect("eviction");
        assert_eq!(ev.block, BlockAddr(2));
        assert!(t.peek(BlockAddr(0)).is_some());
        assert!(t.peek(BlockAddr(4)).is_some());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut t = tiny();
        t.fill(BlockAddr(0), 10);
        t.fill(BlockAddr(2), 20);
        let _ = t.peek(BlockAddr(0)); // not an LRU touch: 0 stays LRU
        let ev = t.fill(BlockAddr(4), 30).unwrap();
        assert_eq!(ev.block, BlockAddr(0));
    }

    #[test]
    fn fill_if_respects_filter() {
        let mut t = tiny();
        t.fill(BlockAddr(0), 10);
        t.fill(BlockAddr(2), 20);
        // Nothing evictable -> refused, metadata handed back.
        let refused = t.fill_if(BlockAddr(4), 30, |_| false);
        assert_eq!(refused.unwrap_err(), 30);
        // Only meta==20 evictable.
        let ok = t.fill_if(BlockAddr(4), 30, |l| l.meta == 20).unwrap();
        assert_eq!(ok.unwrap().block, BlockAddr(2));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = tiny();
        t.fill(BlockAddr(0), 1);
        t.fill(BlockAddr(1), 2);
        assert_eq!(t.invalidate(BlockAddr(0)).unwrap().meta, 1);
        assert!(t.invalidate(BlockAddr(0)).is_none());
        let flushed = t.flush();
        assert_eq!(flushed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn set_stride_spreads_banked_blocks() {
        // Blocks of one bank (stride 8): 0, 8, 16, ... With stride-aware
        // indexing they fill distinct sets; with naive modulo they would
        // alias into set 0.
        let g = CacheGeometry::new(1024, 1, 128).with_set_stride(8); // 8 sets
        let mut t: TagArray<u32> = TagArray::new(g);
        for i in 0..8u64 {
            assert!(
                t.fill(BlockAddr(i * 8), i as u32).is_none(),
                "block {i} evicted early"
            );
        }
        assert_eq!(t.len(), 8, "all eight bank-local blocks resident");
    }

    #[test]
    fn peek_mut_edits_without_lru_touch() {
        let mut t = tiny();
        t.fill(BlockAddr(0), 1);
        t.fill(BlockAddr(2), 2);
        t.peek_mut(BlockAddr(0)).unwrap().meta = 99; // no LRU touch
        assert_eq!(t.peek(BlockAddr(0)).unwrap().meta, 99);
        let ev = t.fill(BlockAddr(4), 3).unwrap();
        assert_eq!(ev.block, BlockAddr(0), "peek_mut must not refresh LRU");
    }

    #[test]
    fn iter_mut_allows_global_rewrites() {
        let mut t = tiny();
        t.fill(BlockAddr(0), 1);
        t.fill(BlockAddr(1), 2);
        for line in t.iter_mut() {
            line.meta *= 10;
        }
        let metas: Vec<u32> = t.iter().map(|l| l.meta).collect();
        assert!(metas.contains(&10) && metas.contains(&20));
    }

    proptest! {
        /// Residency never exceeds capacity and a just-filled block is
        /// always resident afterwards.
        #[test]
        fn capacity_invariant(blocks in proptest::collection::vec(0u64..64, 1..200)) {
            let mut t = tiny();
            let capacity = t.geometry().n_sets() * t.geometry().ways();
            for b in blocks {
                let b = BlockAddr(b);
                t.fill(b, 0u32);
                prop_assert!(t.peek(b).is_some());
                prop_assert!(t.len() <= capacity);
            }
        }

        /// A line is only ever resident in the set its address maps to,
        /// and at most one copy exists.
        #[test]
        fn single_copy_invariant(blocks in proptest::collection::vec(0u64..32, 1..100)) {
            let mut t = tiny();
            for b in &blocks {
                t.fill(BlockAddr(*b), 0u32);
            }
            for b in 0u64..32 {
                let copies = t.iter().filter(|l| l.block == BlockAddr(b)).count();
                prop_assert!(copies <= 1);
            }
        }
    }
}
