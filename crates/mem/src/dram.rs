//! A banked GDDR DRAM timing model (one instance per memory partition).
//!
//! Models the aspects of DRAM that matter for coherence-protocol studies:
//! bank-level parallelism, row-buffer locality (hit vs. activate latency),
//! a bounded request queue providing back-pressure, and a shared data bus
//! that spaces bursts apart (bandwidth). Scheduling is FR-FCFS-like: the
//! oldest row-buffer hit is preferred, falling back to the oldest request.

use std::collections::VecDeque;

use gtsc_faults::{DramFaults, FaultStats};
use gtsc_trace::{EventKind, Tracer};
use gtsc_types::{BlockAddr, Cycle, DramConfig, DramStats, PagePolicy};

/// A request handed to the DRAM by an L2 bank.
///
/// `P` is an opaque payload returned unchanged in the matching
/// [`DramResponse`] (the L2 uses it to resume the stalled transaction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramRequest<P> {
    /// Block to read or write.
    pub block: BlockAddr,
    /// Write bursts occupy the bus but produce no fill data.
    pub is_write: bool,
    /// Caller context, returned in the response.
    pub payload: P,
}

/// Completion notification for an earlier [`DramRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramResponse<P> {
    /// The serviced block.
    pub block: BlockAddr,
    /// Whether this was a write burst.
    pub is_write: bool,
    /// The caller context from the request.
    pub payload: P,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

#[derive(Debug)]
struct InFlight<P> {
    ready_at: Cycle,
    resp: DramResponse<P>,
}

/// One memory partition's DRAM: banks + queue + data bus.
///
/// # Examples
///
/// ```
/// use gtsc_mem::{Dram, DramRequest};
/// use gtsc_types::{BlockAddr, Cycle, DramConfig};
///
/// let mut d: Dram<u32> = Dram::new(DramConfig::default());
/// assert!(d.enqueue(DramRequest { block: BlockAddr(0), is_write: false, payload: 7 }));
/// let mut done = Vec::new();
/// for c in 0..1000 {
///     done.extend(d.tick(Cycle(c)));
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].payload, 7);
/// ```
#[derive(Debug)]
pub struct Dram<P> {
    cfg: DramConfig,
    banks: Vec<Bank>,
    queue: VecDeque<DramRequest<P>>,
    inflight: Vec<InFlight<P>>,
    last_burst: Cycle,
    stats: DramStats,
    /// Optional fault injector (variable service latency); `None` on the
    /// fault-free fast path.
    faults: Option<DramFaults>,
    tracer: Tracer,
    /// Last cycle observed in [`Dram::tick`] (stamps enqueue events —
    /// [`Dram::enqueue`] itself is clock-less).
    clock: Cycle,
}

impl<P> Dram<P> {
    /// Creates an idle DRAM partition.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.banks` or `cfg.queue_depth` is zero.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        assert!(
            cfg.banks > 0 && cfg.queue_depth > 0,
            "DRAM config must be nonzero"
        );
        Dram {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: Cycle(0)
                };
                cfg.banks
            ],
            queue: VecDeque::new(),
            inflight: Vec::new(),
            last_burst: Cycle(0),
            stats: DramStats::default(),
            faults: None,
            tracer: Tracer::disabled(),
            clock: Cycle(0),
            cfg,
        }
    }

    /// Installs a configured tracer (enqueue/service events).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This partition's tracer (disabled unless the simulator installed
    /// one).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs (or clears) a fault injector. Faults only ever *extend*
    /// a request's service latency — requests are never lost, so
    /// [`Dram::is_idle`] remains a liveness guarantee.
    pub fn set_faults(&mut self, faults: Option<DramFaults>) {
        self.faults = faults;
    }

    /// Fault-injection counters, when an injector is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(DramFaults::stats)
    }

    /// Requests waiting in the partition queue (stall diagnostics).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests issued to a bank and awaiting their burst (stall
    /// diagnostics).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn row_of(&self, b: BlockAddr) -> u64 {
        b.0 / self.cfg.blocks_per_row
    }

    fn bank_of(&self, b: BlockAddr) -> usize {
        (self.row_of(b) % self.cfg.banks as u64) as usize
    }

    /// Offers a request; returns `false` (back-pressure) if the queue is
    /// full — the caller must retry later.
    pub fn enqueue(&mut self, req: DramRequest<P>) -> bool {
        if self.queue.len() >= self.cfg.queue_depth {
            self.stats.queue_full_events += 1;
            return false;
        }
        self.tracer
            .record_with(self.clock, || EventKind::DramEnqueue {
                block: req.block,
                write: req.is_write,
            });
        self.queue.push_back(req);
        true
    }

    /// Whether the request queue has room.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cfg.queue_depth
    }

    /// Advances the model to `now`: issues eligible queued requests to free
    /// banks (FR-FCFS) and returns every response whose data burst has
    /// completed by `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<DramResponse<P>> {
        self.clock = self.clock.max(now);
        self.issue(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].ready_at <= now {
                done.push(self.inflight.swap_remove(i).resp);
            } else {
                i += 1;
            }
        }
        done
    }

    fn issue(&mut self, now: Cycle) {
        // One issue attempt per bank per tick.
        for _ in 0..self.banks.len() {
            let Some(idx) = self.pick(now) else { return };
            let req = self.queue.remove(idx).expect("picked index is in range");
            let bank_i = self.bank_of(req.block);
            let row = self.row_of(req.block);
            let bank = &mut self.banks[bank_i];
            let latency = match self.cfg.page_policy {
                PagePolicy::Open => {
                    if bank.open_row == Some(row) {
                        self.stats.row_hits += 1;
                        self.cfg.row_hit
                    } else {
                        self.stats.row_misses += 1;
                        self.cfg.row_miss
                    }
                }
                // Closed page: the row is precharged after each access;
                // every access pays activate + access (between the open
                // policy's hit and miss costs), and nothing depends on
                // the previous row.
                PagePolicy::Closed => {
                    self.stats.row_misses += 1;
                    (self.cfg.row_hit + self.cfg.row_miss) / 2
                }
            };
            if req.is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            self.tracer.record_with(now, || EventKind::DramService {
                block: req.block,
                write: req.is_write,
            });
            bank.open_row = match self.cfg.page_policy {
                PagePolicy::Open => Some(row),
                PagePolicy::Closed => None,
            };
            let latency = latency + self.faults.as_mut().map_or(0, DramFaults::extra_latency);
            let burst_start = (now + latency).max(self.last_burst + self.cfg.burst_gap);
            bank.busy_until = burst_start;
            self.last_burst = burst_start;
            self.inflight.push(InFlight {
                ready_at: burst_start,
                resp: DramResponse {
                    block: req.block,
                    is_write: req.is_write,
                    payload: req.payload,
                },
            });
        }
    }

    /// FR-FCFS pick: oldest request whose bank is free and open-row hits;
    /// else oldest request whose bank is free.
    fn pick(&self, now: Cycle) -> Option<usize> {
        let free = |req: &DramRequest<P>| self.banks[self.bank_of(req.block)].busy_until <= now;
        let hit = |req: &DramRequest<P>| {
            self.banks[self.bank_of(req.block)].open_row == Some(self.row_of(req.block))
        };
        self.queue
            .iter()
            .position(|r| free(r) && hit(r))
            .or_else(|| self.queue.iter().position(free))
    }

    /// Whether all queues and banks are drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl<P: Snap> Snap for DramRequest<P> {
    fn save(&self, w: &mut SnapWriter) {
        self.block.save(w);
        w.bool(self.is_write);
        self.payload.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DramRequest {
            block: Snap::load(r)?,
            is_write: r.bool()?,
            payload: Snap::load(r)?,
        })
    }
}

impl<P: Snap> Snap for DramResponse<P> {
    fn save(&self, w: &mut SnapWriter) {
        self.block.save(w);
        w.bool(self.is_write);
        self.payload.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DramResponse {
            block: Snap::load(r)?,
            is_write: r.bool()?,
            payload: Snap::load(r)?,
        })
    }
}

gtsc_types::snap_fields!(Bank {
    open_row,
    busy_until
});

impl<P: Snap> Snap for InFlight<P> {
    fn save(&self, w: &mut SnapWriter) {
        self.ready_at.save(w);
        self.resp.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(InFlight {
            ready_at: Snap::load(r)?,
            resp: Snap::load(r)?,
        })
    }
}

impl<P: Snap> Dram<P> {
    /// Serializes all dynamic state: bank rows/timers, the request
    /// queue, in-flight bursts (in their exact `Vec` order — completion
    /// uses `swap_remove`, so order is observable), bus/burst timing,
    /// counters, and the armed fault injector. The config and tracer
    /// are rebuilt on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.banks.save(w);
        self.queue.save(w);
        self.inflight.save(w);
        self.last_burst.save(w);
        self.stats.save(w);
        self.faults.save(w);
        self.clock.save(w);
    }

    /// Restores dynamic state into a partition built from the same
    /// config.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] if the bank count differs; any
    /// decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let banks: Vec<Bank> = Snap::load(r)?;
        if banks.len() != self.banks.len() {
            return Err(SnapshotError::Mismatch {
                what: "DRAM bank count".to_owned(),
            });
        }
        self.banks = banks;
        self.queue = Snap::load(r)?;
        self.inflight = Snap::load(r)?;
        self.last_burst = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.faults = Snap::load(r)?;
        self.clock = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain(d: &mut Dram<u32>, horizon: u64) -> Vec<(u64, DramResponse<u32>)> {
        let mut out = Vec::new();
        for c in 0..horizon {
            for r in d.tick(Cycle(c)) {
                out.push((c, r));
            }
        }
        out
    }

    #[test]
    fn single_read_takes_row_miss_latency() {
        let cfg = DramConfig::default();
        let mut d: Dram<u32> = Dram::new(cfg);
        d.enqueue(DramRequest {
            block: BlockAddr(0),
            is_write: false,
            payload: 1,
        });
        let done = drain(&mut d, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, cfg.row_miss); // issued at cycle 0
        assert_eq!(d.stats().row_misses, 1);
        assert!(d.is_idle());
    }

    #[test]
    fn second_access_same_row_is_faster() {
        let cfg = DramConfig::default();
        let mut d: Dram<u32> = Dram::new(cfg);
        d.enqueue(DramRequest {
            block: BlockAddr(0),
            is_write: false,
            payload: 1,
        });
        d.enqueue(DramRequest {
            block: BlockAddr(1),
            is_write: false,
            payload: 2,
        });
        let done = drain(&mut d, 2000);
        assert_eq!(done.len(), 2);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let cfg = DramConfig {
            burst_gap: 1,
            ..DramConfig::default()
        };
        let mut d: Dram<u32> = Dram::new(cfg);
        // Rows 0 and 1 map to banks 0 and 1.
        d.enqueue(DramRequest {
            block: BlockAddr(0),
            is_write: false,
            payload: 1,
        });
        d.enqueue(DramRequest {
            block: BlockAddr(cfg.blocks_per_row),
            is_write: false,
            payload: 2,
        });
        let done = drain(&mut d, 2000);
        // Both finish around row_miss (+burst gap), not serialized 2x.
        let last = done.iter().map(|(c, _)| *c).max().unwrap();
        assert!(
            last < 2 * cfg.row_miss,
            "bank parallelism expected, last={last}"
        );
    }

    #[test]
    fn backpressure_when_queue_full() {
        let cfg = DramConfig {
            queue_depth: 2,
            ..DramConfig::default()
        };
        let mut d: Dram<u32> = Dram::new(cfg);
        assert!(d.enqueue(DramRequest {
            block: BlockAddr(0),
            is_write: false,
            payload: 0
        }));
        assert!(d.enqueue(DramRequest {
            block: BlockAddr(1),
            is_write: false,
            payload: 1
        }));
        assert!(!d.can_accept());
        assert!(!d.enqueue(DramRequest {
            block: BlockAddr(2),
            is_write: false,
            payload: 2
        }));
        assert_eq!(d.stats().queue_full_events, 1);
    }

    #[test]
    fn writes_counted_separately() {
        let mut d: Dram<u32> = Dram::new(DramConfig::default());
        d.enqueue(DramRequest {
            block: BlockAddr(0),
            is_write: true,
            payload: 0,
        });
        let done = drain(&mut d, 1000);
        assert!(done[0].1.is_write);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn closed_page_latency_is_uniform() {
        let cfg = DramConfig {
            page_policy: PagePolicy::Closed,
            burst_gap: 1,
            ..DramConfig::default()
        };
        let mut d: Dram<u32> = Dram::new(cfg);
        d.enqueue(DramRequest {
            block: BlockAddr(0),
            is_write: false,
            payload: 1,
        });
        let done = drain(&mut d, 1000);
        let expected = (cfg.row_hit + cfg.row_miss) / 2;
        assert_eq!(done[0].0, expected);
        // A same-row follow-up pays exactly the same (no open row).
        d.enqueue(DramRequest {
            block: BlockAddr(1),
            is_write: false,
            payload: 2,
        });
        let done = drain(&mut d, 2000);
        assert_eq!(d.stats().row_hits, 0, "closed page never hits");

        let _ = done;
    }

    #[test]
    fn open_page_beats_closed_on_streaming() {
        let mk = |policy| {
            let cfg = DramConfig {
                page_policy: policy,
                burst_gap: 1,
                ..DramConfig::default()
            };
            let mut d: Dram<u32> = Dram::new(cfg);
            for i in 0..8 {
                d.enqueue(DramRequest {
                    block: BlockAddr(i),
                    is_write: false,
                    payload: i as u32,
                });
            }
            let done = drain(&mut d, 5000);
            done.iter().map(|(c, _)| *c).max().unwrap()
        };
        assert!(
            mk(PagePolicy::Open) < mk(PagePolicy::Closed),
            "sequential blocks in one row should favour the open policy"
        );
    }

    #[test]
    fn fault_jitter_only_extends_latency_and_replays() {
        use gtsc_faults::FaultPlan;
        use gtsc_types::FaultConfig;
        let cfg = DramConfig::default();
        let run = |seed: u64| {
            let mut d: Dram<u32> = Dram::new(cfg);
            d.set_faults(FaultPlan::new(FaultConfig::chaos(seed)).dram(0));
            for i in 0..16 {
                d.enqueue(DramRequest {
                    block: BlockAddr(i * 40),
                    is_write: false,
                    payload: i as u32,
                });
            }
            let done = drain(&mut d, 100_000);
            assert!(d.is_idle(), "faults must preserve liveness");
            (done, d.fault_stats().unwrap())
        };
        let (a, sa) = run(21);
        let (b, sb) = run(21);
        assert_eq!(a, b, "same seed replays byte-for-byte");
        assert_eq!(sa, sb);
        assert_eq!(a.len(), 16, "no request lost");
        // First request issues at cycle 0: never earlier than the
        // fault-free row-miss latency.
        assert!(a[0].0 >= cfg.row_miss);
        // And a fault-free run is at least as fast overall.
        let mut clean: Dram<u32> = Dram::new(cfg);
        for i in 0..16 {
            clean.enqueue(DramRequest {
                block: BlockAddr(i * 40),
                is_write: false,
                payload: i as u32,
            });
        }
        let clean_done = drain(&mut clean, 100_000);
        let last = |v: &[(u64, DramResponse<u32>)]| v.iter().map(|(c, _)| *c).max().unwrap();
        assert!(last(&a) >= last(&clean_done));
    }

    #[test]
    fn occupancy_accessors_track_queue_and_banks() {
        let mut d: Dram<u32> = Dram::new(DramConfig::default());
        for i in 0..4 {
            d.enqueue(DramRequest {
                block: BlockAddr(i),
                is_write: false,
                payload: i as u32,
            });
        }
        assert_eq!(d.queued(), 4);
        assert_eq!(d.in_flight(), 0);
        d.tick(Cycle(0));
        assert!(d.in_flight() > 0);
        assert!(d.queued() < 4);
        for c in 1..5000 {
            d.tick(Cycle(c));
        }
        assert_eq!(d.queued() + d.in_flight(), 0);
    }

    proptest! {
        /// Every enqueued request completes exactly once (conservation),
        /// regardless of the access pattern.
        #[test]
        fn conservation(blocks in proptest::collection::vec(0u64..256, 1..60)) {
            let mut d: Dram<u32> = Dram::new(DramConfig::default());
            let mut expected = Vec::new();
            let mut got = Vec::new();
            let mut cycle = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                let req = DramRequest { block: BlockAddr(*b), is_write: i % 3 == 0, payload: i as u32 };
                // Retry until accepted.
                let mut r = req;
                loop {
                    if d.enqueue(r) { break; }
                    for resp in d.tick(Cycle(cycle)) { got.push(resp.payload); }
                    cycle += 1;
                    r = DramRequest { block: BlockAddr(*b), is_write: i % 3 == 0, payload: i as u32 };
                }
                expected.push(i as u32);
            }
            for _ in 0..500_000 {
                for resp in d.tick(Cycle(cycle)) { got.push(resp.payload); }
                cycle += 1;
                if d.is_idle() { break; }
            }
            got.sort_unstable();
            prop_assert_eq!(expected, got);
        }
    }
}
