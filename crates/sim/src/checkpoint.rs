//! Crash-safe checkpoint files.
//!
//! A [`CheckpointStore`] persists snapshot images (from
//! [`crate::GpuSim::save_snapshot`]) so a killed process can resume.
//! Writes are atomic — the new image lands in a temp file, is fsync'd,
//! and is renamed over the previous one — and the displaced image is
//! kept as `<path>.prev`, so at every instant at least one complete,
//! CRC-verified checkpoint exists on disk. [`CheckpointStore::load_latest`]
//! tries the primary image first and falls back to `.prev` when the
//! primary is corrupt or truncated (e.g. `kill -9` raced an older
//! non-atomic writer, or the disk ate bits); only when *both* images are
//! damaged does it report an error.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gtsc_types::snap::SnapshotError;

/// Where a successfully loaded checkpoint came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointSource {
    /// The primary checkpoint file.
    Primary,
    /// The `.prev` fallback (the primary was missing or damaged).
    Previous,
}

/// Why no checkpoint could be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (not corruption — reading the bytes failed).
    Io(io::Error),
    /// Every on-disk image failed validation.
    AllCorrupt {
        /// Why the primary image was rejected (`None` if absent).
        primary: Option<SnapshotError>,
        /// Why the `.prev` image was rejected (`None` if absent).
        fallback: Option<SnapshotError>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::AllCorrupt { primary, fallback } => {
                write!(f, "no loadable checkpoint:")?;
                match primary {
                    Some(e) => write!(f, " primary rejected ({e});")?,
                    None => write!(f, " primary absent;")?,
                }
                match fallback {
                    Some(e) => write!(f, " fallback rejected ({e})"),
                    None => write!(f, " fallback absent"),
                }
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// An atomically-updated checkpoint file with one-deep history.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// A store writing to `path` (and `<path>.prev`, `<path>.tmp`).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointStore { path: path.into() }
    }

    /// The primary checkpoint path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn prev_path(&self) -> PathBuf {
        let mut p = self.path.as_os_str().to_owned();
        p.push(".prev");
        PathBuf::from(p)
    }

    fn tmp_path(&self) -> PathBuf {
        let mut p = self.path.as_os_str().to_owned();
        p.push(".tmp");
        PathBuf::from(p)
    }

    /// Atomically replaces the checkpoint with `bytes`, demoting the
    /// previous image to `.prev`. After the fsync'd rename either the
    /// old or the new complete image is on disk — never a torn mix.
    ///
    /// # Errors
    ///
    /// Any filesystem error; the previous checkpoint (if one existed)
    /// survives a failed save.
    pub fn save(&self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path();
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, bytes)?;
            f.sync_all()?;
        }
        // Demote the current image before the rename lands the new one.
        match fs::rename(&self.path, self.prev_path()) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        fs::rename(&tmp, &self.path)?;
        // Persist both renames: fsync the containing directory so a
        // machine crash cannot roll back to a state with no checkpoint.
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads the newest image `parse` accepts: primary first, then the
    /// `.prev` fallback. `parse` should fully validate the bytes (e.g.
    /// build a sim and call [`crate::GpuSim::restore_snapshot`]).
    ///
    /// Returns `Ok(None)` when no checkpoint has ever been written.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::Io`] if reading an existing file failed.
    /// * [`CheckpointError::AllCorrupt`] if images exist but every one
    ///   was rejected by `parse`.
    pub fn load_latest<T>(
        &self,
        mut parse: impl FnMut(&[u8]) -> Result<T, SnapshotError>,
    ) -> Result<Option<(T, CheckpointSource)>, CheckpointError> {
        let mut primary_err = None;
        if let Some(bytes) = read_optional(&self.path)? {
            match parse(&bytes) {
                Ok(t) => return Ok(Some((t, CheckpointSource::Primary))),
                Err(e) => primary_err = Some(e),
            }
        }
        let mut fallback_err = None;
        if let Some(bytes) = read_optional(&self.prev_path())? {
            match parse(&bytes) {
                Ok(t) => return Ok(Some((t, CheckpointSource::Previous))),
                Err(e) => fallback_err = Some(e),
            }
        }
        if primary_err.is_none() && fallback_err.is_none() {
            return Ok(None);
        }
        Err(CheckpointError::AllCorrupt {
            primary: primary_err,
            fallback: fallback_err,
        })
    }

    /// Removes every file this store manages (primary, `.prev`, `.tmp`).
    ///
    /// # Errors
    ///
    /// Any filesystem error other than the files already being absent.
    pub fn clear(&self) -> io::Result<()> {
        for p in [self.path.clone(), self.prev_path(), self.tmp_path()] {
            match fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

fn read_optional(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match fs::read(path) {
        Ok(b) => Ok(Some(b)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtsc-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn parse_magic(bytes: &[u8]) -> Result<Vec<u8>, SnapshotError> {
        if bytes.first() == Some(&0xAB) {
            Ok(bytes.to_vec())
        } else {
            Err(SnapshotError::BadMagic)
        }
    }

    #[test]
    fn save_then_load_round_trips_and_keeps_history() {
        let dir = tmp_dir("roundtrip");
        let store = CheckpointStore::new(dir.join("ck.snap"));
        assert!(store.load_latest(parse_magic).unwrap().is_none());
        store.save(&[0xAB, 1]).unwrap();
        let (got, src) = store.load_latest(parse_magic).unwrap().unwrap();
        assert_eq!(
            (got.as_slice(), src),
            (&[0xAB, 1][..], CheckpointSource::Primary)
        );
        store.save(&[0xAB, 2]).unwrap();
        let (got, _) = store.load_latest(parse_magic).unwrap().unwrap();
        assert_eq!(got, vec![0xAB, 2]);
        // History: the displaced image is retained as .prev.
        assert_eq!(fs::read(store.prev_path()).unwrap(), vec![0xAB, 1]);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_primary_falls_back_to_prev() {
        let dir = tmp_dir("fallback");
        let store = CheckpointStore::new(dir.join("ck.snap"));
        store.save(&[0xAB, 1]).unwrap();
        store.save(&[0xAB, 2]).unwrap();
        // Truncate/scribble the primary; .prev must still load.
        fs::write(store.path(), [0x00]).unwrap();
        let (got, src) = store.load_latest(parse_magic).unwrap().unwrap();
        assert_eq!(
            (got.as_slice(), src),
            (&[0xAB, 1][..], CheckpointSource::Previous)
        );
        // Scribble .prev too: structured error, not a panic.
        fs::write(store.prev_path(), [0x00]).unwrap();
        match store.load_latest(parse_magic) {
            Err(CheckpointError::AllCorrupt { primary, fallback }) => {
                assert!(primary.is_some() && fallback.is_some());
            }
            other => panic!("expected AllCorrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn clear_removes_all_files() {
        let dir = tmp_dir("clear");
        let store = CheckpointStore::new(dir.join("ck.snap"));
        store.save(&[0xAB]).unwrap();
        store.save(&[0xAB, 9]).unwrap();
        store.clear().unwrap();
        assert!(store.load_latest(parse_magic).unwrap().is_none());
        // Idempotent.
        store.clear().unwrap();
        let _ = fs::remove_dir_all(dir);
    }
}
