//! Renderers for the latency observatory's `profile_report` output:
//! the per-SM cycle-reason table, the flamegraph-folded dump, and the
//! Chrome-trace duration view of sampled spans.
//!
//! The table and the folded dump derive *solely* from [`SimStats`] —
//! state that rides in snapshots — so a run restored mid-kernel
//! reproduces them byte-identically. The span view derives from the
//! volatile span store and is offered separately (`--spans`).

use gtsc_trace::{json_escape, SpanRecord};
use gtsc_types::{CycleReason, SimStats};

/// Renders the per-SM cycle-reason accounting as an aligned text table
/// (one row per SM plus a totals row), ending with the invariant line.
#[must_use]
pub fn render_profile(stats: &SimStats) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>6}", "sm"));
    for r in CycleReason::ALL {
        out.push_str(&format!(" {:>16}", r.name()));
    }
    out.push_str(&format!(" {:>12}\n", "total"));
    let mut totals = [0u64; CycleReason::ALL.len()];
    for (i, sm) in stats.per_sm.iter().enumerate() {
        out.push_str(&format!("{i:>6}"));
        for (j, r) in CycleReason::ALL.into_iter().enumerate() {
            let n = sm.cycle_buckets.get(r);
            totals[j] += n;
            out.push_str(&format!(" {n:>16}"));
        }
        out.push_str(&format!(" {:>12}\n", sm.cycle_buckets.sum()));
    }
    out.push_str(&format!("{:>6}", "all"));
    let mut grand = 0u64;
    for t in totals {
        grand += t;
        out.push_str(&format!(" {t:>16}"));
    }
    out.push_str(&format!(" {grand:>12}\n"));
    out.push_str(&format!(
        "accounted cycles: {} ({} SMs x {} stepped cycles)\n",
        grand,
        stats.per_sm.len(),
        stats.accounted_cycles
    ));
    out
}

/// Renders the cycle buckets in flamegraph "folded" format — one
/// `sm<N>;<reason> <count>` line per non-zero bucket — for piping into
/// `flamegraph.pl` or speedscope.
#[must_use]
pub fn render_folded(stats: &SimStats) -> String {
    let mut out = String::new();
    for (i, sm) in stats.per_sm.iter().enumerate() {
        for r in CycleReason::ALL {
            let n = sm.cycle_buckets.get(r);
            if n > 0 {
                out.push_str(&format!("sm{i};{} {n}\n", r.name()));
            }
        }
    }
    out
}

/// Renders sampled spans as Chrome-trace duration events (`ph: "X"`,
/// one row per SM under a dedicated "spans" process): chain hops as the
/// main lane, overlays stacked above, the close reason in `args`.
#[must_use]
pub fn spans_to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    sep(&mut out);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":9,\"tid\":0,\
         \"args\":{\"name\":\"sampled spans\"}}",
    );
    for s in spans {
        let tid = s.id.sm().0;
        let reason = s.closed.map_or("open", |(_, r)| r.name());
        for (lane, hop) in s
            .hops
            .iter()
            .map(|h| (0u8, h))
            .chain(s.overlays.iter().map(|h| (1u8, h)))
        {
            let Some(exit) = hop.exit else { continue };
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":9,\"tid\":{tid},\
                 \"args\":{{\"span\":\"{}\",\"close\":\"{}\",\"lane\":{lane}}}}}",
                hop.kind.name(),
                hop.enter.0,
                exit.0.saturating_sub(hop.enter.0),
                json_escape(&s.id.to_string()),
                reason,
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::{Cycle, SmStats};

    fn demo_stats() -> SimStats {
        let mut stats = SimStats {
            cycles: Cycle(10),
            accounted_cycles: 10,
            ..SimStats::default()
        };
        for _ in 0..2 {
            let mut sm = SmStats::default();
            for _ in 0..4 {
                sm.cycle_buckets.record(CycleReason::Issue);
            }
            for _ in 0..6 {
                sm.cycle_buckets.record(CycleReason::DramWait);
            }
            stats.per_sm.push(sm);
        }
        stats
    }

    #[test]
    fn profile_table_sums_match_invariant() {
        let text = render_profile(&demo_stats());
        assert!(text.contains("issue"), "{text}");
        assert!(text.contains("dram_wait"), "{text}");
        assert!(
            text.contains("accounted cycles: 20 (2 SMs x 10 stepped cycles)"),
            "{text}"
        );
    }

    #[test]
    fn folded_lines_skip_zero_buckets() {
        let folded = render_folded(&demo_stats());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 4, "{folded}");
        assert!(lines.contains(&"sm0;issue 4"), "{folded}");
        assert!(lines.contains(&"sm1;dram_wait 6"), "{folded}");
    }

    #[test]
    fn span_chrome_trace_is_balanced_json() {
        use gtsc_trace::{CloseReason, Hop, HopKind};
        use gtsc_types::{SmId, SpanId};
        let span = SpanRecord {
            id: SpanId::new(SmId(3), 7),
            opened: Cycle(5),
            closed: Some((Cycle(30), CloseReason::Completed)),
            hops: vec![Hop {
                kind: HopKind::L1,
                enter: Cycle(5),
                exit: Some(Cycle(30)),
            }],
            overlays: vec![Hop {
                kind: HopKind::DramWait,
                enter: Cycle(10),
                exit: Some(Cycle(25)),
            }],
            serve: None,
            mshr_merged: false,
            retransmits: 0,
        };
        let json = spans_to_chrome_trace(&[span]);
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"l1\""), "{json}");
        assert!(json.contains("\"name\":\"dram_wait\""), "{json}");
        assert!(json.contains("\"tid\":3"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }
}
