//! The full-GPU simulator: SMs + NoC + L2 banks + DRAM, wired around any
//! of the workspace's coherence protocols, with built-in correctness
//! checking.
//!
//! This is the reproduction of the paper's evaluation vehicle (GPGPU-Sim
//! 3.2.2 with the authors' protocol patches, Section VI-A). A
//! [`GpuSim`] is built from a [`gtsc_types::GpuConfig`] — which selects
//! the protocol ([`gtsc_types::ProtocolKind`]) and consistency model —
//! and runs [`gtsc_gpu::Kernel`]s to completion, producing
//! [`gtsc_types::SimStats`] plus any coherence violations found by the
//! [`check::Checker`].
//!
//! # Examples
//!
//! ```
//! use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
//! use gtsc_sim::GpuSim;
//! use gtsc_types::{Addr, GpuConfig};
//!
//! let cfg = GpuConfig::test_small();
//! let kernel = VecKernel::new(
//!     "demo",
//!     1,
//!     vec![vec![WarpProgram(vec![
//!         WarpOp::store_coalesced(Addr(0), 32),
//!         WarpOp::load_coalesced(Addr(0), 32),
//!     ])]],
//! );
//! let mut sim = GpuSim::new(cfg);
//! let report = sim.run_kernel(&kernel).expect("kernel completes");
//! assert!(report.stats.cycles.0 > 0);
//! assert!(report.violations.is_empty());
//! ```

pub mod build;
pub mod check;
pub mod checkpoint;
pub mod gpu;
pub mod multi;
pub mod profile;

pub use build::{build_l1, build_l2};
pub use check::{Checker, LoadObservation, Violation};
pub use checkpoint::{CheckpointError, CheckpointSource, CheckpointStore};
pub use gpu::{
    DeviceStall, GpuSim, KernelProgress, RunReport, SimBuilder, SimError, StallDiagnosis,
};
pub use multi::MultiGpuSim;
pub use profile::{render_folded, render_profile, spans_to_chrome_trace};
