//! The top-level cycle-driven GPU simulator.
//!
//! Wires `n_sms` SMs (each with its private-cache controller) to
//! `l2_banks` shared-cache banks through two crossbar networks (requests
//! and responses), and each bank to its own DRAM partition. One call to
//! [`GpuSim::run_kernel`] advances everything cycle by cycle until the
//! kernel drains, performing the global timestamp-rollover coordination
//! of Section V-D and feeding every completed access to the coherence
//! [`Checker`].

use std::collections::BTreeMap;

use gtsc_faults::{BankFaults, FaultPlan};
use gtsc_gpu::{Kernel, Sm, SmParams, WarpStallInfo};
use gtsc_mem::{Dram, DramRequest};
use gtsc_noc::{FlowDiag, ReliableNet};
use gtsc_protocol::msg::{Epoch, L1ToL2, L2ToL1, MsgSizes};
use gtsc_protocol::{ControllerPressure, L2Controller};
use gtsc_trace::{
    merge_tails, HopKind, IntervalSample, IntervalSampler, Sanitizer, Scope, SpanRecord,
    SpanTracker, TraceEvent, Tracer,
};
use gtsc_types::snap::{crc32, Snap, SnapWriter, SnapshotBuilder, SnapshotError, SnapshotFile};
use gtsc_types::{BlockAddr, CtaId, Cycle, CycleReason, GpuConfig, SimStats, SmId, Version};

use crate::build::{build_l1, build_l2};
use crate::check::{Checker, Violation};

/// Result of running one or more kernels.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Aggregated hardware counters.
    pub stats: SimStats,
    /// Coherence violations detected so far (empty on a correct run —
    /// except under [`gtsc_types::ProtocolKind::L1NoCoherence`] on
    /// sharing workloads, where violations are the expected evidence of
    /// incoherence).
    pub violations: Vec<Violation>,
    /// Merged flight-recorder tail captured alongside the violations,
    /// cycle-ordered (empty when tracing is off or the run was clean).
    pub trace_tail: Vec<TraceEvent>,
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured cycle limit elapsed with work still pending
    /// (deadlock guard of last resort; the watchdog usually fires first).
    CycleLimit {
        /// Cycle at which the run aborted.
        at: Cycle,
        /// Warps still resident across all SMs.
        resident_warps: usize,
    },
    /// The forward-progress watchdog saw no completion, no instruction
    /// issue, and no CTA dispatch for `cfg.watchdog_cycles` consecutive
    /// cycles. The diagnosis pinpoints where work is stuck.
    Stalled {
        /// Cycle at which the watchdog fired.
        at: Cycle,
        /// Snapshot of every stalled warp, queue, and MSHR.
        diagnosis: Box<StallDiagnosis>,
    },
    /// The kernel cannot run on this configuration (e.g. a CTA wider
    /// than an SM's warp slots).
    InvalidKernel(String),
    /// The configuration itself is degenerate (e.g. zero SMs or banks).
    InvalidConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { at, resident_warps } => write!(
                f,
                "cycle limit reached at {at} with {resident_warps} warps still resident"
            ),
            SimError::Stalled { at, diagnosis } => {
                write!(f, "no forward progress detected at {at}: {diagnosis}")
            }
            SimError::InvalidKernel(msg) => write!(f, "invalid kernel: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Device-scoped slice of a [`StallDiagnosis`] in a multi-GPU run: where
/// one device's work is stuck relative to the inter-GPU fabric. The key
/// distinction it preserves is *expired inter-GPU grant* (a parked read
/// whose warp outran a grant the device still holds — coherence is
/// waiting on the home node, not on a cache resource) versus a cold
/// first acquisition or a store awaiting its home acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceStall {
    /// Device index.
    pub device: usize,
    /// Parked reads whose warp outran a still-installed inter-GPU grant.
    pub expired_grant_waits: usize,
    /// Parked reads on a block with no grant installed at all.
    pub cold_grant_waits: usize,
    /// Stores forwarded to the home node and not yet acknowledged.
    pub stores_awaiting_home: usize,
    /// The outrun grants, as `(block, grant rts)`.
    pub expired_grants: Vec<(BlockAddr, u64)>,
    /// Transport pressure on this device's fabric flows (both
    /// directions), worst first.
    pub fabric_flows: Vec<FlowDiag>,
}

impl std::fmt::Display for DeviceStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dev{}: {} read(s) stalled on expired inter-GPU grant, {} on cold grant \
             acquisition, {} store(s) awaiting home ack",
            self.device, self.expired_grant_waits, self.cold_grant_waits, self.stores_awaiting_home
        )?;
        for (block, rts) in self.expired_grants.iter().take(4) {
            write!(f, "\n    grant expired: {block} rts {rts}")?;
        }
        for d in self.fabric_flows.iter().take(4) {
            write!(f, "\n    fabric {d}")?;
        }
        Ok(())
    }
}

/// Structured explanation of a loss of forward progress, produced by the
/// watchdog when it aborts a run via [`SimError::Stalled`]. Everything is
/// a point-in-time snapshot taken at the abort cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnosis {
    /// Consecutive cycles without any completion, issue, or dispatch.
    pub stalled_for: u64,
    /// Warps still resident across all SMs.
    pub resident_warps: usize,
    /// Every stalled warp, tagged with its SM index.
    pub warps: Vec<(usize, WarpStallInfo)>,
    /// Per-SM private-cache occupancy (MSHRs, outgoing queue, acks).
    pub l1: Vec<ControllerPressure>,
    /// Per-bank shared-cache occupancy.
    pub l2: Vec<ControllerPressure>,
    /// Packets on the request network's wires.
    pub req_net_in_flight: usize,
    /// Flits waiting at request-network injection ports.
    pub req_net_queued: usize,
    /// Packets on the response network's wires.
    pub resp_net_in_flight: usize,
    /// Flits waiting at response-network injection ports.
    pub resp_net_queued: usize,
    /// Data segments sent but not yet cumulatively acked, across both
    /// networks (zero unless the reliable-transport layer is armed).
    pub transport_unacked: usize,
    /// Per-flow transport pressure on the request network (SM → bank):
    /// pending-retransmit queue depth and oldest-unacked age, worst
    /// (oldest) first.
    pub req_transport_flows: Vec<FlowDiag>,
    /// Same for the response network (bank → SM).
    pub resp_transport_flows: Vec<FlowDiag>,
    /// Retransmissions performed so far (timeout- plus NACK-driven).
    pub retransmits: u64,
    /// Requests waiting in DRAM controller queues (all partitions).
    pub dram_queued: usize,
    /// Requests being serviced by DRAM banks (all partitions).
    pub dram_in_flight: usize,
    /// Timestamp-reset epoch at the abort cycle (Section V-D).
    pub epoch: Epoch,
    /// Global rollovers performed so far.
    pub ts_rollovers: u64,
    /// Per-device fabric-facing stall attribution (empty on a
    /// single-GPU machine, one entry per device under `MultiGpuSim`).
    pub devices: Vec<DeviceStall>,
    /// Merged flight-recorder tail across every component, oldest first
    /// (empty unless tracing was enabled — see
    /// [`gtsc_types::TraceConfig`]).
    pub recent_events: Vec<TraceEvent>,
}

impl std::fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} warps resident, no progress for {} cycles (epoch {}, {} rollovers)",
            self.resident_warps, self.stalled_for, self.epoch, self.ts_rollovers
        )?;
        for (sm, w) in &self.warps {
            writeln!(f, "  sm{sm}: {w}")?;
        }
        for (i, p) in self.l1.iter().enumerate() {
            if !p.is_empty() {
                writeln!(f, "  l1[{i}]: {p}")?;
            }
        }
        for (i, p) in self.l2.iter().enumerate() {
            if !p.is_empty() {
                writeln!(f, "  l2[{i}]: {p}")?;
            }
        }
        writeln!(
            f,
            "  noc: req {} in flight / {} queued, resp {} in flight / {} queued",
            self.req_net_in_flight,
            self.req_net_queued,
            self.resp_net_in_flight,
            self.resp_net_queued
        )?;
        if self.transport_unacked > 0 || self.retransmits > 0 {
            writeln!(
                f,
                "  transport: {} unacked, {} retransmits so far",
                self.transport_unacked, self.retransmits
            )?;
            for d in self.req_transport_flows.iter().take(4) {
                writeln!(f, "    req {d}")?;
            }
            for d in self.resp_transport_flows.iter().take(4) {
                writeln!(f, "    resp {d}")?;
            }
        }
        write!(
            f,
            "  dram: {} queued, {} in service",
            self.dram_queued, self.dram_in_flight
        )?;
        for d in &self.devices {
            write!(f, "\n  {d}")?;
        }
        if !self.recent_events.is_empty() {
            let shown = self.recent_events.len().min(16);
            let tail = &self.recent_events[self.recent_events.len() - shown..];
            write!(f, "\n  last {shown} trace events:")?;
            for e in tail {
                write!(f, "\n    {e}")?;
            }
        }
        Ok(())
    }
}

/// Resumable dispatch state of one in-flight kernel: everything
/// [`GpuSim::advance_kernel`] needs between slices that is not part of
/// the machine itself — the CTA dispatch cursor, the round-robin SM
/// cursor, and the forward-progress watchdog's fingerprint. Snapshot it
/// alongside the [`GpuSim`] (via [`GpuSim::save_snapshot`]) to checkpoint
/// a run mid-kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProgress {
    /// Identity of the kernel this progress belongs to; resuming with a
    /// different kernel is rejected.
    pub(crate) kernel_name: String,
    pub(crate) n_ctas: usize,
    warps_per_cta: usize,
    /// Next CTA to dispatch.
    pub(crate) next_cta: usize,
    /// Round-robin dispatch cursor across SMs.
    pub(crate) sm_cursor: usize,
    /// Forward-progress watchdog fingerprint: moves whenever the machine
    /// does useful work (completions, issues, dispatch, retirement,
    /// transport progress). Seeded with sentinels so the first cycle of
    /// a fresh run always registers progress.
    pub(crate) last_fingerprint: (u64, u64, usize, usize, u64),
    /// Cycle at which the fingerprint last moved.
    pub(crate) last_progress: Cycle,
}

impl KernelProgress {
    /// Fresh progress for `kernel` (nothing dispatched yet).
    #[must_use]
    pub fn new(kernel: &dyn Kernel) -> Self {
        KernelProgress {
            kernel_name: kernel.name().to_owned(),
            n_ctas: kernel.n_ctas(),
            warps_per_cta: kernel.warps_per_cta(),
            next_cta: 0,
            sm_cursor: 0,
            last_fingerprint: (0, 0, usize::MAX, usize::MAX, u64::MAX),
            last_progress: Cycle(0),
        }
    }

    /// CTAs dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> usize {
        self.next_cta
    }

    /// Whether every CTA of the grid has been dispatched (warps may
    /// still be resident).
    #[must_use]
    pub fn fully_dispatched(&self) -> bool {
        self.next_cta == self.n_ctas
    }

    /// Whether `kernel` is the kernel this progress was created for.
    #[must_use]
    pub fn matches(&self, kernel: &dyn Kernel) -> bool {
        self.kernel_name == kernel.name()
            && self.n_ctas == kernel.n_ctas()
            && self.warps_per_cta == kernel.warps_per_cta()
    }
}

gtsc_types::snap_fields!(KernelProgress {
    kernel_name,
    n_ctas,
    warps_per_cta,
    next_cta,
    sm_cursor,
    last_fingerprint,
    last_progress,
});

/// The assembled GPU.
pub struct GpuSim {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    l2: Vec<Box<dyn L2Controller>>,
    drams: Vec<Dram<()>>,
    req_net: ReliableNet<(usize, L1ToL2)>,
    resp_net: ReliableNet<L2ToL1>,
    /// Per-bank crash schedulers (loss-fault injection); `None` when
    /// bank crashes are disabled.
    bank_faults: Vec<Option<BankFaults>>,
    /// Banks crash-recovered so far (surfaces as
    /// [`gtsc_types::TransportStats::bank_recoveries`]).
    bank_recoveries: u64,
    sizes: MsgSizes,
    now: Cycle,
    epoch: Epoch,
    checker: Checker,
    sampler: IntervalSampler,
    /// Root handle on the shared transition sanitizer (disabled unless
    /// `cfg.sanitize`); the L1s and L2 banks hold scoped clones.
    sanitizer: Sanitizer,
    /// Root handle on the shared causal-span tracker (disabled unless
    /// `cfg.trace.spans_enabled()`); every layer holds a clone. Volatile
    /// observability state — excluded from snapshots like the tracer.
    spans: SpanTracker,
    /// Cycles actually stepped by this machine (the denominator of the
    /// cycle-reason accounting invariant: every per-SM bucket set sums to
    /// exactly this). Snapshotted, unlike the span state, because the
    /// accounting lives in `SmStats` which is snapshotted too.
    steps: u64,
}

/// Retained checker events above which [`Checker::compact`] runs (large
/// enough that short litmus runs — whose tests read exact
/// `load_observations` — are never compacted).
const COMPACT_RETAINED_THRESHOLD: usize = 1 << 20;
/// How often (in cycles) the run loop polls the checker's footprint.
const COMPACT_POLL_CYCLES: u64 = 4096;

impl std::fmt::Debug for GpuSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuSim")
            .field("config", &self.cfg.label())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// Assembles a [`GpuSim`] with optionally overridden cache controllers —
/// the extension point for plugging a *new* coherence protocol into the
/// unchanged GPU/NoC/DRAM substrate (see `examples/custom_protocol.rs`).
///
/// # Examples
///
/// ```
/// use gtsc_sim::SimBuilder;
/// use gtsc_types::GpuConfig;
///
/// // Defaults reproduce GpuSim::new(cfg).
/// let sim = SimBuilder::new(GpuConfig::test_small()).build();
/// assert_eq!(sim.now().0, 0);
/// ```
pub struct SimBuilder {
    cfg: GpuConfig,
    l1_factory: L1Factory,
    l2_factory: L2Factory,
}

/// Factory producing one private-cache controller per SM.
type L1Factory = Box<dyn Fn(&GpuConfig, usize) -> Box<dyn gtsc_protocol::L1Controller>>;
/// Factory producing one shared-cache bank controller.
type L2Factory = Box<dyn Fn(&GpuConfig) -> Box<dyn L2Controller>>;

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("config", &self.cfg.label())
            .finish_non_exhaustive()
    }
}

impl SimBuilder {
    /// Starts from `cfg` with the protocol selected by `cfg.protocol`.
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        SimBuilder {
            cfg,
            l1_factory: Box::new(|cfg, i| build_l1(cfg, i)),
            l2_factory: Box::new(build_l2),
        }
    }

    /// Overrides the private-cache controller (called once per SM with
    /// the SM index).
    #[must_use]
    pub fn with_l1(
        mut self,
        factory: impl Fn(&GpuConfig, usize) -> Box<dyn gtsc_protocol::L1Controller> + 'static,
    ) -> Self {
        self.l1_factory = Box::new(factory);
        self
    }

    /// Overrides the shared-cache bank controller (called once per bank).
    #[must_use]
    pub fn with_l2(
        mut self,
        factory: impl Fn(&GpuConfig) -> Box<dyn L2Controller> + 'static,
    ) -> Self {
        self.l2_factory = Box::new(factory);
        self
    }

    /// Assembles the GPU.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (zero SMs or banks); use
    /// [`SimBuilder::try_build`] for a structured error instead.
    #[must_use]
    pub fn build(self) -> GpuSim {
        // lint: allow(panic): the documented infallible shorthand.
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assembles the GPU, validating the configuration. Also installs the
    /// fault plan derived from `cfg.faults`: request network = NoC
    /// streams 0 (data) and 2 (transport control), response network =
    /// streams 1 and 3, one DRAM stream per partition, per-bank crash
    /// schedules, and the timestamp-width cap applied before the L2
    /// banks are built. When any loss fault is enabled
    /// ([`gtsc_types::FaultConfig::lossy_active`]) the networks' reliable
    /// transport and the L1s' end-to-end retry are armed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config is degenerate
    /// (zero SMs or banks).
    pub fn try_build(self) -> Result<GpuSim, SimError> {
        let mut cfg = self.cfg;
        if cfg.n_sms == 0 || cfg.l2_banks == 0 {
            return Err(SimError::InvalidConfig(format!(
                "config must have SMs and banks (n_sms={}, l2_banks={})",
                cfg.n_sms, cfg.l2_banks
            )));
        }
        let plan = FaultPlan::new(cfg.faults);
        // The rollover-storm knob narrows the timestamp width before the
        // banks (and message sizes) are derived from it.
        cfg.ts_bits = plan.effective_ts_bits(cfg.ts_bits);
        let mut sms: Vec<Sm> = (0..cfg.n_sms)
            .map(|i| {
                Sm::new(
                    SmParams {
                        id: SmId(i as u16),
                        n_warp_slots: cfg.warps_per_sm,
                        block_shift: cfg.l1.block_shift(),
                        consistency: cfg.consistency,
                        max_outstanding_per_warp: cfg.max_outstanding_per_warp,
                        max_ctas: cfg.max_ctas_per_sm,
                        issue_width: 1,
                        scheduler: cfg.scheduler,
                    },
                    (self.l1_factory)(&cfg, i),
                )
            })
            .collect();
        let mut l2: Vec<Box<dyn L2Controller>> =
            (0..cfg.l2_banks).map(|_| (self.l2_factory)(&cfg)).collect();
        let mut drams: Vec<Dram<()>> = (0..cfg.l2_banks).map(|_| Dram::new(cfg.dram)).collect();
        let mut req_net = ReliableNet::new(cfg.n_sms, cfg.l2_banks, cfg.noc, cfg.transport);
        let mut resp_net = ReliableNet::new(cfg.l2_banks, cfg.n_sms, cfg.noc, cfg.transport);
        req_net.set_faults(plan.noc(0), plan.noc(2));
        resp_net.set_faults(plan.noc(1), plan.noc(3));
        if cfg.faults.lossy_active() {
            // Loss faults make the raw NoC unreliable: arm the transport
            // layer (ack/retransmit/dedup) and the L1s' end-to-end retry.
            // Both stay off otherwise so the lossless hot path — and the
            // watchdog's ability to catch genuine protocol stalls — are
            // untouched.
            req_net.enable(cfg.faults.seed ^ 0x5245_515F);
            resp_net.enable(cfg.faults.seed ^ 0x5245_5350);
            for sm in &mut sms {
                sm.l1_mut().enable_retry(cfg.transport.retry_timeout);
            }
        }
        let bank_faults: Vec<Option<BankFaults>> = (0..cfg.l2_banks)
            .map(|b| plan.bank(b as u64, cfg.l2_banks as u64))
            .collect();
        for (i, d) in drams.iter_mut().enumerate() {
            d.set_faults(plan.dram(i as u64));
        }
        if cfg.trace.is_enabled() {
            for (i, sm) in sms.iter_mut().enumerate() {
                sm.set_tracer(Tracer::new(Scope::Sm(i as u16), &cfg.trace));
                sm.l1_mut()
                    .set_tracer(Tracer::new(Scope::Sm(i as u16), &cfg.trace));
            }
            for (b, bank) in l2.iter_mut().enumerate() {
                bank.set_tracer(Tracer::new(Scope::L2Bank(b as u16), &cfg.trace));
            }
            req_net.set_tracer(Tracer::new(Scope::Noc(0), &cfg.trace));
            resp_net.set_tracer(Tracer::new(Scope::Noc(1), &cfg.trace));
            for (d, dram) in drams.iter_mut().enumerate() {
                dram.set_tracer(Tracer::new(Scope::Dram(d as u16), &cfg.trace));
            }
        }
        let spans = if cfg.trace.spans_enabled() {
            SpanTracker::new(cfg.trace.span_cap)
        } else {
            SpanTracker::disabled()
        };
        if spans.is_enabled() {
            for sm in sms.iter_mut() {
                sm.set_span_sampling(cfg.trace.span_rate, cfg.trace.span_seed, spans.clone());
                sm.l1_mut().set_span_tracker(spans.clone());
            }
            for bank in l2.iter_mut() {
                bank.set_span_tracker(spans.clone());
            }
            req_net.set_span_probe(spans.clone(), |p: &(usize, L1ToL2)| p.1.span());
            resp_net.set_span_probe(spans.clone(), gtsc_protocol::msg::L2ToL1::span);
        }
        let sanitizer = if cfg.sanitize {
            Sanitizer::enabled(Scope::Sm(0))
        } else {
            Sanitizer::disabled()
        };
        if sanitizer.is_enabled() {
            for (i, sm) in sms.iter_mut().enumerate() {
                sm.l1_mut()
                    .set_sanitizer(sanitizer.for_scope(Scope::Sm(i as u16)));
            }
            for (b, bank) in l2.iter_mut().enumerate() {
                bank.set_sanitizer(sanitizer.for_scope(Scope::L2Bank(b as u16)));
            }
        }
        let sampler = IntervalSampler::new(if cfg.trace.is_enabled() {
            cfg.trace.sample_interval
        } else {
            0
        });
        let sizes = MsgSizes::new(cfg.noc.control_bytes, cfg.ts_bits, cfg.l1.block_size());
        Ok(GpuSim {
            cfg,
            sms,
            l2,
            drams,
            req_net,
            resp_net,
            bank_faults,
            bank_recoveries: 0,
            sizes,
            now: Cycle(0),
            epoch: 0,
            checker: Checker::new(),
            sampler,
            sanitizer,
            spans,
            steps: 0,
        })
    }
}

impl GpuSim {
    /// Assembles a GPU per `cfg` (shorthand for
    /// [`SimBuilder::new`]`(cfg).build()`).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is degenerate (zero SMs or banks).
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        SimBuilder::new(cfg).build()
    }

    /// The configuration this GPU was built with.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Runs `kernel` to completion (dispatching CTAs as SMs free up),
    /// then flushes the private caches (kernel boundary, Section V-D).
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidKernel`] if a CTA is wider than an SM.
    /// * [`SimError::Stalled`] if `cfg.watchdog_cycles` pass without any
    ///   completion, instruction issue, or CTA dispatch — with a
    ///   [`StallDiagnosis`] explaining where work is stuck.
    /// * [`SimError::CycleLimit`] if `cfg.max_cycles` elapses first.
    pub fn run_kernel(&mut self, kernel: &dyn Kernel) -> Result<RunReport, SimError> {
        let mut progress = KernelProgress::new(kernel);
        let report = self.advance_kernel(kernel, &mut progress, 0)?;
        // A zero budget is unbounded: advance_kernel only parks (None) on
        // an exhausted budget, so the report is always present here.
        report.map_or_else(
            || {
                Err(SimError::InvalidConfig(
                    "unbounded advance_kernel yielded no report".to_owned(),
                ))
            },
            Ok,
        )
    }

    /// Advances `kernel` by at most `max_cycles` cycles (`0` =
    /// unbounded), carrying dispatch and watchdog state in `progress` so
    /// a run can be executed in slices — and checkpointed between them
    /// via [`GpuSim::save_snapshot`]. Slicing is *invisible* to the
    /// simulation: any sequence of budgets produces the machine state,
    /// stats, and report of one uninterrupted run.
    ///
    /// Returns `Ok(Some(report))` when the kernel drained (private caches
    /// flushed, kernel boundary of Section V-D), or `Ok(None)` when the
    /// budget elapsed with work still pending.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidKernel`] if a CTA is wider than an SM, or if
    ///   `progress` belongs to a different kernel.
    /// * [`SimError::Stalled`] / [`SimError::CycleLimit`] as for
    ///   [`GpuSim::run_kernel`].
    pub fn advance_kernel(
        &mut self,
        kernel: &dyn Kernel,
        progress: &mut KernelProgress,
        max_cycles: u64,
    ) -> Result<Option<RunReport>, SimError> {
        if kernel.warps_per_cta() > self.cfg.warps_per_sm {
            return Err(SimError::InvalidKernel(format!(
                "CTA wider than an SM: kernel '{}' needs {} warps per CTA but SMs have {} slots",
                kernel.name(),
                kernel.warps_per_cta(),
                self.cfg.warps_per_sm
            )));
        }
        if !progress.matches(kernel) {
            return Err(SimError::InvalidKernel(format!(
                "progress for kernel '{}' ({} CTAs × {} warps) cannot resume kernel '{}' \
                 ({} CTAs × {} warps)",
                progress.kernel_name,
                progress.n_ctas,
                progress.warps_per_cta,
                kernel.name(),
                kernel.n_ctas(),
                kernel.warps_per_cta()
            )));
        }
        let n_ctas = kernel.n_ctas();
        let mut budget = max_cycles;
        loop {
            // CTA dispatch: round-robin across SMs (as GPGPU-Sim does),
            // so the grid spreads over the whole chip instead of packing
            // the first SMs.
            'dispatch: while progress.next_cta < n_ctas {
                let cta = CtaId(progress.next_cta as u32);
                let warps = kernel.warps_per_cta();
                let n_sms = self.sms.len();
                let Some(offset) = (0..n_sms)
                    .find(|k| self.sms[(progress.sm_cursor + k) % n_sms].can_accept_cta(warps))
                else {
                    break 'dispatch;
                };
                let picked = (progress.sm_cursor + offset) % n_sms;
                progress.sm_cursor = (picked + 1) % n_sms;
                let programs = (0..warps).map(|w| kernel.program(cta, w)).collect();
                self.sms[picked].assign_cta(cta, programs);
                progress.next_cta += 1;
            }

            self.step();

            if self.sampler.due(self.now) {
                let cumulative = self.cumulative_stats();
                self.sampler.sample(self.now, &cumulative);
            }

            // Bound the checker's memory on soaks: prune globally visible
            // history once the retained set is large (never on the short
            // litmus runs whose tests read exact observations).
            if self.now.0.is_multiple_of(COMPACT_POLL_CYCLES)
                && self.checker.retained_events() >= COMPACT_RETAINED_THRESHOLD
            {
                self.checker.compact();
            }

            if progress.next_cta == n_ctas && self.all_idle() {
                break;
            }
            // Forward-progress watchdog: a fingerprint that moves whenever
            // the machine does useful work. Completions and issues cover
            // draining; dispatch covers the ramp-up; resident covers
            // retirement; the transport mark (deliveries + acks + flow
            // resets — deliberately not retransmits, which can spin
            // forever) keeps lossy runs alive while recovery is genuinely
            // advancing.
            let fingerprint = (
                self.checker.n_events(),
                self.sms.iter().map(Sm::issued_count).sum::<u64>(),
                progress.next_cta,
                self.sms.iter().map(Sm::resident_warps).sum::<usize>(),
                self.req_net.progress_mark() + self.resp_net.progress_mark(),
            );
            if fingerprint != progress.last_fingerprint {
                progress.last_fingerprint = fingerprint;
                progress.last_progress = self.now;
            } else if self.cfg.watchdog_cycles > 0
                && self.now - progress.last_progress >= self.cfg.watchdog_cycles
            {
                return Err(SimError::Stalled {
                    at: self.now,
                    diagnosis: Box::new(self.diagnose_stall(self.now - progress.last_progress)),
                });
            }
            self.now += 1;
            if self.cfg.max_cycles > 0 && self.now.0 > self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    at: self.now,
                    resident_warps: self.sms.iter().map(Sm::resident_warps).sum(),
                });
            }
            if max_cycles > 0 {
                budget -= 1;
                if budget == 0 {
                    return Ok(None);
                }
            }
        }
        for sm in &mut self.sms {
            sm.l1_mut().flush();
        }
        let cumulative = self.cumulative_stats();
        self.sampler.finish(self.now, &cumulative);
        Ok(Some(self.report()))
    }

    /// Runs several kernels back to back (private caches flushed between).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered.
    pub fn run_kernels(&mut self, kernels: &[&dyn Kernel]) -> Result<RunReport, SimError> {
        let mut last = None;
        for k in kernels {
            last = Some(self.run_kernel(*k)?);
        }
        Ok(last.unwrap_or_else(|| self.report()))
    }

    /// The current aggregated statistics and violations. When tracing is
    /// enabled and the checker found violations, the flight-recorder tail
    /// rides along for the post-mortem.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let mut violations = self.checker.finish_capped(self.cfg.max_violations_reported);
        // Sanitizer findings (transition-level invariant breaks) ride in
        // the same report, after the end-to-end checker's.
        violations.extend(self.sanitizer.violations().into_iter().map(Violation));
        let suppressed = self.sanitizer.suppressed();
        if suppressed > 0 {
            violations.push(Violation(format!(
                "…and {suppressed} more sanitizer violation(s) suppressed (retention cap)"
            )));
        }
        let stats = self.cumulative_stats();
        // The cycle-accounting invariant rides in the same report: every
        // SM's reason buckets must tile the stepped cycles exactly — a
        // mismatch means a step classified a cycle twice or not at all.
        for (i, sm) in stats.per_sm.iter().enumerate() {
            let sum = sm.cycle_buckets.sum();
            if sum != stats.accounted_cycles {
                violations.push(Violation(format!(
                    "cycle accounting broken on sm{i}: reason buckets sum to {sum} \
                     but {} cycles were stepped",
                    stats.accounted_cycles
                )));
            }
        }
        let trace_tail = if violations.is_empty() || !self.cfg.trace.is_enabled() {
            Vec::new()
        } else {
            self.flight_tail()
        };
        RunReport {
            stats,
            violations,
            trace_tail,
        }
    }

    /// Cumulative counters at `now`: merged totals plus the per-component
    /// breakdowns ([`SimStats::per_sm`] and friends, indexed by SM / bank
    /// / partition).
    fn cumulative_stats(&self) -> SimStats {
        let mut stats = SimStats {
            cycles: self.now,
            accounted_cycles: self.steps,
            ..SimStats::default()
        };
        for sm in &self.sms {
            let s = sm.stats();
            let l1 = sm.l1().stats();
            stats.sm.merge(&s);
            stats.l1.merge(&l1);
            stats.per_sm.push(s);
            stats.per_l1.push(l1);
        }
        for bank in &self.l2 {
            let s = bank.stats();
            stats.l2.merge(&s);
            stats.per_l2.push(s);
        }
        stats.noc.merge(&self.req_net.stats());
        stats.noc.merge(&self.resp_net.stats());
        let mut transport = self.req_net.transport_stats();
        transport.merge(&self.resp_net.transport_stats());
        transport.bank_recoveries = self.bank_recoveries;
        stats.transport = transport;
        for d in &self.drams {
            let s = d.stats();
            stats.dram.merge(&s);
            stats.per_dram.push(s);
        }
        stats
    }

    /// Every retained trace event across all components, cycle-ordered
    /// (empty unless [`gtsc_types::TraceMode::Full`]).
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for sm in &self.sms {
            all.extend_from_slice(sm.tracer().events());
            if let Some(t) = sm.l1().tracer() {
                all.extend_from_slice(t.events());
            }
        }
        for bank in &self.l2 {
            if let Some(t) = bank.tracer() {
                all.extend_from_slice(t.events());
            }
        }
        all.extend(self.req_net.events());
        all.extend(self.resp_net.events());
        for d in &self.drams {
            all.extend_from_slice(d.tracer().events());
        }
        all.sort_by_key(|e| e.cycle);
        all
    }

    /// The merged flight-recorder tail across all components, oldest
    /// first — the post-mortem view dumped into [`StallDiagnosis`] and
    /// violation-carrying [`RunReport`]s.
    #[must_use]
    pub fn flight_tail(&self) -> Vec<TraceEvent> {
        let mut tails = Vec::new();
        for sm in &self.sms {
            tails.push(sm.tracer().flight_tail());
            if let Some(t) = sm.l1().tracer() {
                tails.push(t.flight_tail());
            }
        }
        for bank in &self.l2 {
            if let Some(t) = bank.tracer() {
                tails.push(t.flight_tail());
            }
        }
        tails.push(self.req_net.flight_tail());
        tails.push(self.resp_net.flight_tail());
        for d in &self.drams {
            tails.push(d.tracer().flight_tail());
        }
        merge_tails(&tails)
    }

    /// The retained causal-span records (empty unless
    /// [`gtsc_types::TraceConfig::spans_enabled`]). Hits open and close
    /// in the same cycle; in-flight spans are not included.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.spans()
    }

    /// Sampled spans dropped by the retention cap (deterministic
    /// first-N retention keeps the kept set stable across runs).
    #[must_use]
    pub fn spans_suppressed(&self) -> u64 {
        self.spans.suppressed()
    }

    /// The interval sampler's time-series (empty unless
    /// [`gtsc_types::TraceConfig::sample_interval`] is set and tracing is
    /// enabled).
    #[must_use]
    pub fn samples(&self) -> &[IntervalSample] {
        self.sampler.samples()
    }

    /// The full event log and time-series as Chrome `trace_event` JSON
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        gtsc_trace::to_chrome_trace(&self.trace_events(), self.samples())
    }

    /// Snapshot of every stalled warp, queue, and MSHR, taken when the
    /// watchdog fires.
    fn diagnose_stall(&self, stalled_for: u64) -> StallDiagnosis {
        let now = self.now;
        StallDiagnosis {
            stalled_for,
            resident_warps: self.sms.iter().map(Sm::resident_warps).sum(),
            warps: self
                .sms
                .iter()
                .enumerate()
                .flat_map(|(i, sm)| sm.stalled_warps(now).into_iter().map(move |w| (i, w)))
                .collect(),
            l1: self.sms.iter().map(|sm| sm.l1().pressure()).collect(),
            l2: self.l2.iter().map(|b| b.pressure()).collect(),
            req_net_in_flight: self.req_net.in_flight(),
            req_net_queued: self.req_net.queued(),
            resp_net_in_flight: self.resp_net.in_flight(),
            resp_net_queued: self.resp_net.queued(),
            transport_unacked: self.req_net.unacked() + self.resp_net.unacked(),
            req_transport_flows: self.req_net.flow_diagnostics(now),
            resp_transport_flows: self.resp_net.flow_diagnostics(now),
            retransmits: self.req_net.transport_stats().retransmits
                + self.resp_net.transport_stats().retransmits,
            dram_queued: self.drams.iter().map(Dram::queued).sum(),
            dram_in_flight: self.drams.iter().map(Dram::in_flight).sum(),
            epoch: self.epoch,
            ts_rollovers: self.l2.iter().map(|b| b.stats().ts_rollovers).sum(),
            devices: Vec::new(),
            recent_events: self.flight_tail(),
        }
    }

    /// Aggregated fault-injection counters across both networks (data
    /// and transport-control channels), all DRAM partitions, and the
    /// bank-crash schedulers; `None` when the run is fault-free.
    #[must_use]
    pub fn fault_stats(&self) -> Option<gtsc_faults::FaultStats> {
        let mut any = false;
        let mut total = gtsc_faults::FaultStats::default();
        for s in [self.req_net.fault_stats(), self.resp_net.fault_stats()]
            .into_iter()
            .flatten()
            .chain(self.drams.iter().filter_map(Dram::fault_stats))
            .chain(self.bank_faults.iter().flatten().map(BankFaults::stats))
        {
            total.merge(&s);
            any = true;
        }
        any.then_some(total)
    }

    /// Read-only access to the coherence checker (litmus assertions in
    /// tests use its load observations).
    #[must_use]
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// The root handle on the transition sanitizer (disabled unless the
    /// config set [`gtsc_types::GpuConfig::sanitize`]).
    #[must_use]
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// The functional memory image across all banks (for cross-protocol
    /// equivalence tests on data-race-free workloads).
    #[must_use]
    pub fn memory_image(&self) -> BTreeMap<BlockAddr, Version> {
        let mut img = BTreeMap::new();
        for bank in &self.l2 {
            for (b, v) in bank.memory_image() {
                img.insert(b, v);
            }
        }
        img
    }

    /// A cheap structural fingerprint of the build configuration, stored
    /// in snapshots so a restore into a differently-configured machine is
    /// rejected up front instead of failing deep inside a section.
    fn config_fingerprint(&self) -> u64 {
        // Derived Debug output is deterministic for identical configs
        // across processes, which is all a mismatch check needs.
        let repr = format!("{:?}", self.cfg);
        (u64::from(crc32(repr.as_bytes())) << 32) | u64::from(crc32(self.cfg.label().as_bytes()))
    }

    /// Serializes the complete dynamic state of the machine — SMs and
    /// warp slots, L1/L2 tag arrays and leases, MSHRs, queues, transport
    /// flows, DRAM, fault-injector RNG streams, checker, sampler, and
    /// cumulative counters — into a versioned, per-section-CRC'd snapshot
    /// (DESIGN.md §14). Pass the in-flight [`KernelProgress`] to
    /// checkpoint mid-kernel; `None` snapshots a machine at a kernel
    /// boundary.
    ///
    /// Structure that is derivable from the [`GpuConfig`] (geometries,
    /// timing parameters, tracer and sanitizer wiring, fault arming) is
    /// *not* serialized: [`GpuSim::restore_snapshot`] requires a target
    /// freshly built from the same config. Flight-recorder rings restart
    /// empty after a restore — they only feed post-mortem displays, never
    /// results.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if a cache controller in this build
    /// does not implement checkpointing (the non-G-TSC baselines).
    pub fn save_snapshot(
        &self,
        progress: Option<&KernelProgress>,
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut b = SnapshotBuilder::new();

        let mut w = SnapWriter::new();
        self.config_fingerprint().save(&mut w);
        b.section("meta", w.into_bytes());

        let mut w = SnapWriter::new();
        self.now.save(&mut w);
        self.epoch.save(&mut w);
        self.bank_recoveries.save(&mut w);
        self.bank_faults.save(&mut w);
        self.sanitizer.save_state(&mut w);
        self.steps.save(&mut w);
        b.section("sim", w.into_bytes());

        let mut w = SnapWriter::new();
        w.usize(self.sms.len());
        for sm in &self.sms {
            sm.save_state(&mut w)?;
        }
        b.section("sms", w.into_bytes());

        let mut w = SnapWriter::new();
        w.usize(self.l2.len());
        for bank in &self.l2 {
            bank.save_state(&mut w)?;
        }
        b.section("l2", w.into_bytes());

        let mut w = SnapWriter::new();
        w.usize(self.drams.len());
        for d in &self.drams {
            d.save_state(&mut w);
        }
        b.section("dram", w.into_bytes());

        let mut w = SnapWriter::new();
        self.req_net.save_state(&mut w);
        self.resp_net.save_state(&mut w);
        b.section("net", w.into_bytes());

        let mut w = SnapWriter::new();
        self.checker.save(&mut w);
        b.section("checker", w.into_bytes());

        let mut w = SnapWriter::new();
        self.sampler.save(&mut w);
        b.section("sampler", w.into_bytes());

        if let Some(p) = progress {
            let mut w = SnapWriter::new();
            p.save(&mut w);
            b.section("progress", w.into_bytes());
        }
        Ok(b.finish())
    }

    /// Restores a snapshot produced by [`GpuSim::save_snapshot`] into
    /// this machine, which must have been freshly built from the same
    /// [`GpuConfig`] (checked via a config fingerprint). Returns the
    /// [`KernelProgress`] embedded in mid-kernel checkpoints, to be
    /// passed back to [`GpuSim::advance_kernel`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on a damaged, truncated, or mismatched
    /// snapshot — always an error, never a panic. On error the target may
    /// be partially overwritten: discard it and rebuild from config
    /// (falling back to an older checkpoint if one exists).
    pub fn restore_snapshot(
        &mut self,
        bytes: &[u8],
    ) -> Result<Option<KernelProgress>, SnapshotError> {
        let file = SnapshotFile::parse(bytes)?;

        let mut r = file.section("meta")?;
        let fingerprint: u64 = Snap::load(&mut r)?;
        r.expect_end("meta section")?;
        if fingerprint != self.config_fingerprint() {
            return Err(SnapshotError::Mismatch {
                what: "config fingerprint".into(),
            });
        }

        let mut r = file.section("sim")?;
        self.now = Snap::load(&mut r)?;
        self.epoch = Snap::load(&mut r)?;
        self.bank_recoveries = Snap::load(&mut r)?;
        let bank_faults: Vec<Option<BankFaults>> = Snap::load(&mut r)?;
        if bank_faults.len() != self.bank_faults.len() {
            return Err(SnapshotError::Mismatch {
                what: "bank-fault scheduler count".into(),
            });
        }
        self.bank_faults = bank_faults;
        self.sanitizer.load_state(&mut r)?;
        self.steps = Snap::load(&mut r)?;
        r.expect_end("sim section")?;

        let mut r = file.section("sms")?;
        if r.usize()? != self.sms.len() {
            return Err(SnapshotError::Mismatch {
                what: "SM count".into(),
            });
        }
        for sm in &mut self.sms {
            sm.load_state(&mut r)?;
        }
        r.expect_end("sms section")?;

        let mut r = file.section("l2")?;
        if r.usize()? != self.l2.len() {
            return Err(SnapshotError::Mismatch {
                what: "L2 bank count".into(),
            });
        }
        for bank in &mut self.l2 {
            bank.load_state(&mut r)?;
        }
        r.expect_end("l2 section")?;

        let mut r = file.section("dram")?;
        if r.usize()? != self.drams.len() {
            return Err(SnapshotError::Mismatch {
                what: "DRAM partition count".into(),
            });
        }
        for d in &mut self.drams {
            d.load_state(&mut r)?;
        }
        r.expect_end("dram section")?;

        let mut r = file.section("net")?;
        self.req_net.load_state(&mut r)?;
        self.resp_net.load_state(&mut r)?;
        r.expect_end("net section")?;

        let mut r = file.section("checker")?;
        self.checker = Snap::load(&mut r)?;
        r.expect_end("checker section")?;

        let mut r = file.section("sampler")?;
        self.sampler = Snap::load(&mut r)?;
        r.expect_end("sampler section")?;

        if file.section_names().contains(&"progress") {
            let mut r = file.section("progress")?;
            let p = KernelProgress::load(&mut r)?;
            r.expect_end("progress section")?;
            Ok(Some(p))
        } else {
            Ok(None)
        }
    }

    fn all_idle(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
            && self.l2.iter().all(|b| b.is_idle())
            && self.drams.iter().all(Dram::is_idle)
            && self.req_net.is_idle()
            && self.resp_net.is_idle()
    }

    /// One global clock cycle.
    fn step(&mut self) {
        let now = self.now;
        let n_banks = self.cfg.l2_banks;

        // 1. SM issue; L1 hits complete immediately.
        for (i, sm) in self.sms.iter_mut().enumerate() {
            for c in sm.cycle(now) {
                self.checker.on_completion(i, &c, now);
            }
        }

        // 2. L1 housekeeping (end-to-end retry scans may re-queue overdue
        //    requests and complete long-parked waiters), then L1 →
        //    request network.
        for (i, sm) in self.sms.iter_mut().enumerate() {
            for c in sm.l1_mut().tick(now) {
                sm.on_completion_at(&c, Some(now));
                self.checker.on_completion(i, &c, now);
            }
            while let Some(req) = sm.l1_mut().take_request() {
                let bank = req.block().bank(n_banks);
                let bytes = self.sizes.request_bytes(&req);
                self.spans.hop_enter(req.span(), HopKind::NocReq, now);
                self.req_net.send(i, bank, bytes, (i, req), now);
            }
        }

        // 3. Request deliveries → L2 banks.
        for (bank, (src, msg)) in self.req_net.tick(now) {
            self.spans.hop_enter(msg.span(), HopKind::L2Serve, now);
            self.l2[bank].on_request(src, msg, now);
        }

        // 4. L2 banks and their DRAM partitions.
        for (b, bank) in self.l2.iter_mut().enumerate() {
            bank.dram_ready(self.drams[b].can_accept());
            bank.tick(now);
            while self.drams[b].can_accept() {
                let Some((block, is_write)) = bank.take_dram_request() else {
                    break;
                };
                let accepted = self.drams[b].enqueue(DramRequest {
                    block,
                    is_write,
                    payload: (),
                });
                debug_assert!(accepted, "can_accept checked");
            }
            for resp in self.drams[b].tick(now) {
                bank.on_dram_response(resp.block, resp.is_write, now);
            }
        }

        // 4b. Scheduled bank crashes (loss-fault injection): the bank's
        //     tags, MSHRs, and queues vanish mid-cycle. Its transport
        //     flows are reset on both networks in the same cycle (stale
        //     generations are discarded, so pre-crash sequence state can
        //     never collide with the rebuilt bank), and the crash forces
        //     `needs_reset`, so the Section V-D broadcast below rebuilds
        //     coherence from DRAM behind a global epoch bump. Requests
        //     the bank had consumed are recovered by the L1s' end-to-end
        //     retry.
        for b in 0..self.l2.len() {
            let due = self
                .bank_faults
                .get_mut(b)
                .and_then(Option::as_mut)
                .is_some_and(|f| f.due(now.0));
            if due && self.l2[b].crash(now) {
                self.bank_recoveries += 1;
                self.req_net.reset_flows_to_dst(b, now);
                self.resp_net.reset_flows_from_src(b, now);
            }
        }

        // 5. Timestamp rollover: any overflowing bank triggers the global
        //    reset broadcast of Section V-D.
        let rollover = self.l2.iter().any(|b| b.needs_reset());
        if rollover {
            self.epoch += 1;
            for bank in &mut self.l2 {
                bank.apply_reset(self.epoch);
            }
        }

        // 6. L2 → response network.
        for (b, bank) in self.l2.iter_mut().enumerate() {
            while let Some((dst, msg)) = bank.take_response() {
                let bytes = self.sizes.response_bytes(&msg);
                self.spans.hop_enter(msg.span(), HopKind::NocResp, now);
                self.resp_net.send(b, dst, bytes, msg, now);
            }
        }

        // 7. Response deliveries → L1s; completions retire warp accesses.
        for (dst, msg) in self.resp_net.tick(now) {
            let sm = &mut self.sms[dst];
            self.spans.hop_enter(msg.span(), HopKind::L1Fill, now);
            let done = sm.l1_mut().on_response(msg, now);
            for c in done {
                sm.on_completion_at(&c, Some(now));
                self.checker.on_completion(dst, &c, now);
            }
        }

        // 8. Cycle-reason accounting: attribute this cycle, for every SM,
        //    to exactly one bucket. The buckets therefore tile elapsed
        //    time — `sum(buckets) == steps` per SM, the invariant the
        //    sanitizer and the profile report both assert.
        for sm in &mut self.sms {
            let reason = if sm.issued_last_cycle() {
                CycleReason::Issue
            } else if rollover {
                CycleReason::RolloverFreeze
            } else if !sm.has_resident_warps() {
                CycleReason::Idle
            } else {
                match sm.l1().wait_hint() {
                    gtsc_protocol::WaitHint::LeaseExpired => CycleReason::LeaseExpiredWait,
                    gtsc_protocol::WaitHint::MshrFull => CycleReason::MshrFull,
                    gtsc_protocol::WaitHint::NocBackpressure => CycleReason::NocBackpressure,
                    gtsc_protocol::WaitHint::Downstream => CycleReason::DramWait,
                    gtsc_protocol::WaitHint::None => CycleReason::Idle,
                }
            };
            sm.account_cycle(reason);
        }
        self.steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
    use gtsc_types::{Addr, ConsistencyModel, ProtocolKind};

    fn store_load_kernel() -> VecKernel {
        VecKernel::new(
            "roundtrip",
            1,
            vec![vec![WarpProgram(vec![
                WarpOp::store_coalesced(Addr(0), 32),
                WarpOp::Fence,
                WarpOp::load_coalesced(Addr(0), 32),
                WarpOp::load_coalesced(Addr(4096), 32),
            ])]],
        )
    }

    #[test]
    fn roundtrip_completes_on_every_protocol_and_model() {
        for p in [
            ProtocolKind::Gtsc,
            ProtocolKind::Tc,
            ProtocolKind::TcWeak,
            ProtocolKind::NoL1,
            ProtocolKind::L1NoCoherence,
        ] {
            for m in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
                let cfg = GpuConfig::test_small().with_protocol(p).with_consistency(m);
                let mut sim = GpuSim::new(cfg);
                let report = sim
                    .run_kernel(&store_load_kernel())
                    .unwrap_or_else(|e| panic!("{p:?}/{m:?}: {e}"));
                assert!(report.stats.cycles.0 > 0);
                assert!(
                    report.violations.is_empty(),
                    "{p:?}/{m:?}: {:?}",
                    report.violations
                );
                assert!(report.stats.sm.issued >= 3);
            }
        }
    }

    #[test]
    fn producer_consumer_across_ctas_is_coherent_under_gtsc() {
        // CTA0 stores DATA then FLAG; CTA1 spins.. simplified: loads FLAG
        // then DATA (no spin — timing may read early values, but never
        // incoherent ones; the checker validates timestamp ordering).
        let kernel = VecKernel::new(
            "prodcons",
            1,
            vec![
                vec![WarpProgram(vec![
                    WarpOp::store_coalesced(Addr(0), 32),
                    WarpOp::Fence,
                    WarpOp::store_coalesced(Addr(128), 32),
                ])],
                vec![WarpProgram(vec![
                    WarpOp::load_coalesced(Addr(128), 32),
                    WarpOp::Fence,
                    WarpOp::load_coalesced(Addr(0), 32),
                    WarpOp::Compute(5),
                    WarpOp::load_coalesced(Addr(128), 32),
                    WarpOp::Fence,
                    WarpOp::load_coalesced(Addr(0), 32),
                ])],
            ],
        );
        for m in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
            let cfg = GpuConfig::test_small()
                .with_protocol(ProtocolKind::Gtsc)
                .with_consistency(m);
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{m:?}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn contended_block_many_warps() {
        // 4 warps in 2 CTAs hammer the same block with stores and loads;
        // the checker must stay satisfied (G-TSC serializes via wts).
        let prog = |seed: u64| {
            WarpProgram(
                (0..10)
                    .flat_map(|i| {
                        let op = if (i + seed).is_multiple_of(3) {
                            WarpOp::store_coalesced(Addr(0), 32)
                        } else {
                            WarpOp::load_coalesced(Addr(0), 32)
                        };
                        [op, WarpOp::Compute(1 + (seed as u32) % 3)]
                    })
                    .collect(),
            )
        };
        let kernel = VecKernel::new(
            "contend",
            2,
            vec![vec![prog(0), prog(1)], vec![prog(2), prog(3)]],
        );
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.stats.l2.stores > 0);
    }

    #[test]
    fn more_ctas_than_slots_drain_in_waves() {
        let prog = WarpProgram(vec![
            WarpOp::load_coalesced(Addr(0), 32),
            WarpOp::Compute(2),
        ]);
        let ctas = (0..16).map(|_| vec![prog.clone()]).collect();
        let kernel = VecKernel::new("waves", 1, ctas);
        let cfg = GpuConfig::test_small();
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        // 16 CTAs × 2 instructions each.
        assert_eq!(report.stats.sm.issued, 32);
    }

    #[test]
    fn multi_kernel_flushes_between() {
        let k = store_load_kernel();
        let cfg = GpuConfig::test_small();
        let mut sim = GpuSim::new(cfg);
        let r1 = sim.run_kernel(&k).expect("k1");
        let cold_after_one = r1.stats.l1.cold_misses;
        let r2 = sim.run_kernel(&k).expect("k2");
        // The second kernel misses cold again (flush between kernels).
        assert!(r2.stats.l1.cold_misses >= 2 * cold_after_one);
        assert!(r2.violations.is_empty());
    }

    #[test]
    fn memory_image_reflects_final_stores() {
        let cfg = GpuConfig::test_small();
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&store_load_kernel()).expect("completes");
        let img = sim.memory_image();
        assert!(img.contains_key(&BlockAddr(0)));
        assert_ne!(img[&BlockAddr(0)], Version::ZERO);
    }

    #[test]
    fn sim_builder_injects_custom_controllers() {
        // A "counting" L1 factory around the real builder, proving the
        // factory is consulted once per SM.
        use std::cell::Cell;
        use std::rc::Rc;
        let calls = Rc::new(Cell::new(0usize));
        let calls2 = calls.clone();
        let cfg = GpuConfig::test_small();
        let _sim = crate::SimBuilder::new(cfg)
            .with_l1(move |cfg, i| {
                calls2.set(calls2.get() + 1);
                crate::build_l1(cfg, i)
            })
            .build();
        assert_eq!(calls.get(), GpuConfig::test_small().n_sms);
    }

    #[test]
    fn cta_dispatch_spreads_over_sms() {
        // 2 single-warp CTAs on a 2-SM GPU: both SMs issue work.
        let prog = WarpProgram(vec![
            WarpOp::Compute(3),
            WarpOp::load_coalesced(Addr(0), 32),
        ]);
        let kernel = VecKernel::new("spread", 1, vec![vec![prog.clone()], vec![prog]]);
        let cfg = GpuConfig::test_small();
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&kernel).expect("completes");
        for sm in &sim.sms {
            assert!(sm.stats().issued > 0, "both SMs should have issued");
        }
    }

    #[test]
    fn latency_histogram_is_populated() {
        let cfg = GpuConfig::test_small();
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&store_load_kernel()).expect("completes");
        assert!(report.stats.sm.mem_latency.count() > 0);
        // A queued miss must take at least the NoC round trip.
        assert!(report.stats.sm.mem_latency.percentile(0.99) >= 32.0);
    }

    #[test]
    fn watchdog_fires_with_diagnosis_on_starved_dram() {
        use gtsc_types::StallKind;
        // DRAM that effectively never answers: the lone load wedges the
        // whole machine. The watchdog must abort far before max_cycles
        // and name the stuck warp and the queues holding its request.
        let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        cfg.dram.row_hit = 50_000_000;
        cfg.dram.row_miss = 50_000_000;
        cfg.watchdog_cycles = 2_000;
        let kernel = VecKernel::new(
            "starved",
            1,
            vec![vec![WarpProgram(vec![WarpOp::load_coalesced(Addr(0), 32)])]],
        );
        let mut sim = GpuSim::new(cfg);
        match sim.run_kernel(&kernel) {
            Err(SimError::Stalled { at, diagnosis }) => {
                assert!(at.0 < 10_000, "fired well before the cycle limit (at {at})");
                assert!(diagnosis.stalled_for >= 2_000);
                assert_eq!(diagnosis.resident_warps, 1);
                assert!(
                    diagnosis
                        .warps
                        .iter()
                        .any(|(_, w)| w.stall == StallKind::Memory),
                    "{diagnosis}"
                );
                assert!(diagnosis.l1.iter().any(|p| p.mshr > 0), "{diagnosis}");
                assert!(diagnosis.l2.iter().any(|p| p.mshr > 0), "{diagnosis}");
                assert!(
                    diagnosis.dram_queued + diagnosis.dram_in_flight > 0,
                    "{diagnosis}"
                );
                let text = diagnosis.to_string();
                assert!(text.contains("stalled on Memory"), "{text}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_disabled_falls_through_to_cycle_limit() {
        let mut cfg = GpuConfig::test_small();
        cfg.dram.row_hit = 50_000_000;
        cfg.dram.row_miss = 50_000_000;
        cfg.watchdog_cycles = 0;
        cfg.max_cycles = 3_000;
        let kernel = VecKernel::new(
            "starved",
            1,
            vec![vec![WarpProgram(vec![WarpOp::load_coalesced(Addr(0), 32)])]],
        );
        let mut sim = GpuSim::new(cfg);
        assert!(matches!(
            sim.run_kernel(&kernel),
            Err(SimError::CycleLimit { .. })
        ));
    }

    #[test]
    fn try_build_rejects_degenerate_config() {
        let mut cfg = GpuConfig::test_small();
        cfg.n_sms = 0;
        match SimBuilder::new(cfg).try_build() {
            Err(SimError::InvalidConfig(msg)) => assert!(msg.contains("n_sms=0"), "{msg}"),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn oversized_cta_is_a_structured_error() {
        let cfg = GpuConfig::test_small();
        let warps = cfg.warps_per_sm + 1;
        let kernel = VecKernel::new(
            "wide",
            warps,
            vec![(0..warps)
                .map(|_| WarpProgram(vec![WarpOp::Compute(1)]))
                .collect()],
        );
        let mut sim = GpuSim::new(cfg);
        match sim.run_kernel(&kernel) {
            Err(SimError::InvalidKernel(msg)) => assert!(msg.contains("wide"), "{msg}"),
            other => panic!("expected InvalidKernel, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn traced_stall_diagnosis_carries_flight_recorder_tail() {
        use gtsc_types::TraceConfig;
        // Same starved-DRAM wedge as above, but with the flight recorder
        // on: the diagnosis must carry (and render) the event tail that
        // led up to the stall.
        let mut cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_trace(TraceConfig::flight());
        cfg.dram.row_hit = 50_000_000;
        cfg.dram.row_miss = 50_000_000;
        cfg.watchdog_cycles = 2_000;
        let kernel = VecKernel::new(
            "starved",
            1,
            vec![vec![WarpProgram(vec![WarpOp::load_coalesced(Addr(0), 32)])]],
        );
        let mut sim = GpuSim::new(cfg);
        match sim.run_kernel(&kernel) {
            Err(SimError::Stalled { diagnosis, .. }) => {
                assert!(!diagnosis.recent_events.is_empty());
                // The wedged load's trail is visible: cold miss at the L1,
                // packet into the request net, enqueue at DRAM.
                let kinds: Vec<_> = diagnosis
                    .recent_events
                    .iter()
                    .map(|e| e.kind.name())
                    .collect();
                assert!(kinds.contains(&"cold_miss"), "{kinds:?}");
                assert!(kinds.contains(&"dram_enqueue"), "{kinds:?}");
                let text = diagnosis.to_string();
                assert!(text.contains("last 16 trace events:"), "{text}");
                // The rendered tail is the most recent activity: the
                // wedged warp's stall, cycle after cycle.
                assert!(text.contains("stall"), "{text}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn untraced_stall_diagnosis_has_no_event_tail() {
        let mut cfg = GpuConfig::test_small();
        cfg.dram.row_hit = 50_000_000;
        cfg.dram.row_miss = 50_000_000;
        cfg.watchdog_cycles = 2_000;
        let kernel = VecKernel::new(
            "starved",
            1,
            vec![vec![WarpProgram(vec![WarpOp::load_coalesced(Addr(0), 32)])]],
        );
        let mut sim = GpuSim::new(cfg);
        match sim.run_kernel(&kernel) {
            Err(SimError::Stalled { diagnosis, .. }) => {
                assert!(diagnosis.recent_events.is_empty());
                assert!(!diagnosis.to_string().contains("trace events"));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn full_trace_records_protocol_lifecycle_and_exports_chrome_json() {
        use gtsc_types::TraceConfig;
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_trace(TraceConfig::full());
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&store_load_kernel()).expect("completes");
        let events = sim.trace_events();
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        let kinds: Vec<_> = events.iter().map(|e| e.kind.name()).collect();
        for needed in [
            "warp_issue",
            "cold_miss",
            "lease_grant",
            "store_commit",
            "fill_applied",
            "packet_send",
            "packet_deliver",
            "dram_service",
        ] {
            assert!(kinds.contains(&needed), "missing {needed} in {kinds:?}");
        }
        let json = sim.chrome_trace();
        assert!(json.starts_with('{'), "{json}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.ends_with('}'), "{json}");
    }

    #[test]
    fn interval_sampler_covers_the_whole_run() {
        use gtsc_types::TraceConfig;
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_trace(TraceConfig::full().with_interval(64));
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&store_load_kernel()).expect("completes");
        let samples = sim.samples();
        assert!(!samples.is_empty());
        // Contiguous coverage from 0 to the final cycle...
        assert_eq!(samples[0].start, Cycle(0));
        assert!(samples.windows(2).all(|w| w[0].end == w[1].start));
        // ...whose deltas sum back to the cumulative totals.
        let issued: u64 = samples.iter().map(|s| s.delta.sm.issued).sum();
        assert_eq!(issued, report.stats.sm.issued);
        let flits: u64 = samples.iter().map(|s| s.delta.noc.flits).sum();
        assert_eq!(flits, report.stats.noc.flits);
    }

    #[test]
    fn report_exposes_per_component_stats_summing_to_totals() {
        let cfg = GpuConfig::test_small();
        let n_sms = cfg.n_sms;
        let banks = cfg.l2_banks;
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&store_load_kernel()).expect("completes");
        let s = &report.stats;
        assert_eq!(s.per_sm.len(), n_sms);
        assert_eq!(s.per_l1.len(), n_sms);
        assert_eq!(s.per_l2.len(), banks);
        assert_eq!(s.per_dram.len(), banks);
        assert_eq!(s.per_sm.iter().map(|x| x.issued).sum::<u64>(), s.sm.issued);
        assert_eq!(
            s.per_l1.iter().map(|x| x.accesses).sum::<u64>(),
            s.l1.accesses
        );
        assert_eq!(s.per_l2.iter().map(|x| x.stores).sum::<u64>(), s.l2.stores);
        assert_eq!(
            s.per_dram.iter().map(|x| x.reads).sum::<u64>(),
            s.dram.reads
        );
    }

    #[test]
    fn sanitized_run_is_clean_and_checks_transitions() {
        for p in [ProtocolKind::Gtsc, ProtocolKind::Tc] {
            for m in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
                let cfg = GpuConfig::test_small()
                    .with_protocol(p)
                    .with_consistency(m)
                    .with_sanitize(true);
                let mut sim = GpuSim::new(cfg);
                let report = sim
                    .run_kernel(&store_load_kernel())
                    .unwrap_or_else(|e| panic!("{p:?}/{m:?}: {e}"));
                assert!(
                    report.violations.is_empty(),
                    "{p:?}/{m:?}: {:?}",
                    report.violations
                );
                assert!(
                    sim.sanitizer().checked() > 0,
                    "{p:?}/{m:?}: sanitizer saw no transitions"
                );
            }
        }
    }

    #[test]
    fn unsanitized_run_keeps_sanitizer_disabled() {
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&store_load_kernel()).expect("completes");
        assert!(!sim.sanitizer().is_enabled());
        assert_eq!(sim.sanitizer().checked(), 0);
    }

    /// Data-race-free traffic generator: each CTA stores to its own
    /// blocks then reads them back, with enough packets on the wire that
    /// a seeded loss plan reliably bites.
    fn drf_traffic_kernel(n_ctas: usize) -> VecKernel {
        let ctas = (0..n_ctas)
            .map(|c| {
                let base = (c as u64) * 1024;
                vec![WarpProgram(
                    (0..6)
                        .flat_map(|i| {
                            [
                                WarpOp::store_coalesced(Addr(base + i * 128), 32),
                                WarpOp::Fence,
                                WarpOp::load_coalesced(Addr(base + i * 128), 32),
                            ]
                        })
                        .collect(),
                )]
            })
            .collect();
        VecKernel::new("drf-traffic", 1, ctas)
    }

    #[test]
    fn fault_free_run_keeps_transport_dark() {
        use gtsc_types::TransportStats;
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&store_load_kernel()).expect("completes");
        assert_eq!(report.stats.transport, TransportStats::default());
        assert!(sim.fault_stats().is_none());
    }

    #[test]
    fn lossy_noc_preserves_coherence_and_memory_image() {
        use gtsc_types::FaultConfig;
        let kernel = drf_traffic_kernel(6);
        let mut clean = GpuSim::new(GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc));
        clean.run_kernel(&kernel).expect("clean run");
        let want = clean.memory_image();

        let mut cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_sanitize(true);
        cfg.faults = FaultConfig::lossy(7, 100);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("lossy run completes");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(sim.memory_image(), want, "image must match fault-free run");
        let t = &report.stats.transport;
        assert!(t.delivered > 0, "{t:?}");
        let f = sim.fault_stats().expect("faults active");
        assert!(
            f.dropped + f.corrupted > 0,
            "10% loss over this much traffic must bite: {f:?}"
        );
        assert!(
            t.retransmits > 0 && t.acks > 0,
            "every loss must be repaired by a retransmit: {t:?}"
        );
    }

    #[test]
    fn bank_crash_recovers_behind_epoch_bump() {
        use gtsc_types::FaultConfig;
        let kernel = drf_traffic_kernel(8);
        let mut clean = GpuSim::new(GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc));
        clean.run_kernel(&kernel).expect("clean run");
        let want = clean.memory_image();

        let mut cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_sanitize(true);
        cfg.faults = FaultConfig::default().with_bank_crashes(3, 250);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("crashed run recovers");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let t = &report.stats.transport;
        assert!(t.bank_recoveries >= 1, "{t:?}");
        assert!(
            report.stats.l2.ts_rollovers >= 1,
            "a crash must force the global Section V-D reset"
        );
        assert_eq!(sim.memory_image(), want, "data survives the crash via DRAM");
        let f = sim.fault_stats().expect("bank faults active");
        assert!(f.bank_resets >= 1, "{f:?}");
    }

    #[test]
    fn advance_kernel_in_slices_matches_run_kernel() {
        // Slicing the run loop must be invisible: any budget sequence
        // yields the stats of one uninterrupted run.
        let kernel = drf_traffic_kernel(6);
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        let mut whole = GpuSim::new(cfg.clone());
        let want = whole.run_kernel(&kernel).expect("whole run");

        let mut sliced = GpuSim::new(cfg);
        let mut progress = KernelProgress::new(&kernel);
        let mut report = None;
        for _ in 0..100_000 {
            if let Some(r) = sliced
                .advance_kernel(&kernel, &mut progress, 37)
                .expect("slice")
            {
                report = Some(r);
                break;
            }
        }
        let got = report.expect("sliced run completes");
        assert_eq!(got.stats, want.stats);
        assert_eq!(sliced.memory_image(), whole.memory_image());
    }

    #[test]
    fn advance_kernel_rejects_foreign_progress() {
        let cfg = GpuConfig::test_small();
        let mut sim = GpuSim::new(cfg);
        let mut progress = KernelProgress::new(&store_load_kernel());
        let other = drf_traffic_kernel(2);
        match sim.advance_kernel(&other, &mut progress, 10) {
            Err(SimError::InvalidKernel(msg)) => {
                assert!(msg.contains("cannot resume"), "{msg}");
            }
            other => panic!("expected InvalidKernel, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn mid_kernel_snapshot_resumes_byte_identically_under_faults() {
        use gtsc_types::FaultConfig;
        // The flagship determinism property: checkpoint at cycle N,
        // restore into a fresh build, continue — and get the SimStats
        // and memory image of the uninterrupted run, with a lossy NoC
        // and bank crashes active across the checkpoint.
        let kernel = drf_traffic_kernel(8);
        let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        cfg.faults = FaultConfig::lossy(42, 80).with_bank_crashes(2, 400);

        let mut whole = GpuSim::new(cfg.clone());
        let want = whole.run_kernel(&kernel).expect("uninterrupted run");

        // Run half-interrupted: slice, snapshot mid-flight, abandon the
        // original machine, restore, finish.
        let mut first = GpuSim::new(cfg.clone());
        let mut progress = KernelProgress::new(&kernel);
        let parked = first
            .advance_kernel(&kernel, &mut progress, 300)
            .expect("first slice");
        assert!(parked.is_none(), "300 cycles must not drain this kernel");
        let snap = first.save_snapshot(Some(&progress)).expect("snapshot");
        drop(first);

        let mut resumed = SimBuilder::new(cfg).try_build().expect("rebuild");
        let mut progress2 = resumed
            .restore_snapshot(&snap)
            .expect("restore")
            .expect("mid-kernel snapshot carries progress");
        assert_eq!(progress2, progress);
        // A snapshot of the restored machine is byte-identical to the
        // original snapshot (save → restore → save stability).
        let snap2 = resumed
            .save_snapshot(Some(&progress2))
            .expect("re-snapshot");
        assert_eq!(snap, snap2, "restored state must re-serialize identically");
        let mut report = None;
        for _ in 0..100_000 {
            if let Some(r) = resumed
                .advance_kernel(&kernel, &mut progress2, 111)
                .expect("resumed slice")
            {
                report = Some(r);
                break;
            }
        }
        let got = report.expect("resumed run completes");
        assert_eq!(got.stats, want.stats);
        assert!(got.violations.is_empty(), "{:?}", got.violations);
        assert_eq!(resumed.memory_image(), whole.memory_image());
    }

    #[test]
    fn snapshot_corruption_is_an_error_never_a_panic() {
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        let mut sim = GpuSim::new(cfg.clone());
        sim.run_kernel(&store_load_kernel()).expect("completes");
        let snap = sim.save_snapshot(None).expect("snapshot");

        // Truncation at every eighth boundary and a bit flip in every
        // 97th byte: all must fail cleanly.
        for cut in (0..8).map(|i| snap.len() * i / 8) {
            let mut fresh = SimBuilder::new(cfg.clone()).try_build().expect("build");
            assert!(fresh.restore_snapshot(&snap[..cut]).is_err());
        }
        for i in (0..snap.len()).step_by(97) {
            let mut bad = snap.clone();
            bad[i] ^= 0x40;
            let mut fresh = SimBuilder::new(cfg.clone()).try_build().expect("build");
            assert!(
                fresh.restore_snapshot(&bad).is_err(),
                "bit flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn snapshot_config_mismatch_is_rejected() {
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&store_load_kernel()).expect("completes");
        let snap = sim.save_snapshot(None).expect("snapshot");
        let mut other_cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        other_cfg.warps_per_sm += 1;
        let mut other = SimBuilder::new(other_cfg).try_build().expect("build");
        match other.restore_snapshot(&snap) {
            Err(gtsc_types::snap::SnapshotError::Mismatch { what }) => {
                assert!(what.contains("fingerprint"), "{what}");
            }
            other => panic!("expected Mismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn baseline_protocols_report_unsupported_snapshot() {
        let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Tc);
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&store_load_kernel()).expect("completes");
        match sim.save_snapshot(None) {
            Err(gtsc_types::snap::SnapshotError::Unsupported { .. }) => {}
            other => panic!("expected Unsupported, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn rollover_under_tiny_timestamps_stays_coherent() {
        // 6-bit timestamps force frequent rollovers; the Section V-D
        // protocol must keep the run coherent — with the transition
        // sanitizer watching every epoch entry and lease grant.
        let mut cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_sanitize(true);
        cfg.ts_bits = 6;
        let prog = |s: u64| {
            WarpProgram(
                (0..30)
                    .map(|i| {
                        if (i + s).is_multiple_of(4) {
                            WarpOp::store_coalesced(Addr((i % 3) * 128), 32)
                        } else {
                            WarpOp::load_coalesced(Addr((i % 3) * 128), 32)
                        }
                    })
                    .collect(),
            )
        };
        let kernel = VecKernel::new("rollover", 1, vec![vec![prog(0)], vec![prog(1)]]);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        assert!(
            report.stats.l2.ts_rollovers > 0,
            "rollover should have fired"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(sim.sanitizer().checked() > 0);
    }
}
