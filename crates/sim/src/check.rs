//! Runtime coherence checking.
//!
//! The simulator tracks data functionally as [`Version`]s: every store
//! publishes a fresh version, every load reports the version it observed.
//! For timestamp-ordering protocols (G-TSC) the checker verifies the core
//! invariant of Section III-C — *the values returned by loads are
//! consistent with the timestamp assignment*:
//!
//! > a load with logical time `t` (in reset epoch `e`) must return the
//! > version written by the latest store with `(epoch, wts) ≤ (e, t)`
//! > on that block (or the initial contents if there is none).
//!
//! For physical-time and plain protocols (TC, baselines) timestamps carry
//! no meaning, so the checker falls back to a functional sanity property:
//! every loaded version must be the initial value or something actually
//! stored to that block. (TC-specific ordering is exercised by the litmus
//! integration tests instead.)

use std::collections::{BTreeMap, HashSet};

use gtsc_protocol::msg::Epoch;
use gtsc_protocol::{AccessKind, Completion};
use gtsc_types::{BlockAddr, Cycle, Timestamp, Version};

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One observed load, exposed for litmus-style assertions in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadObservation {
    /// Logical `(epoch, timestamp)` of the load, when the protocol has one.
    pub key: Option<(Epoch, Timestamp)>,
    /// Version the load returned.
    pub version: Version,
    /// Physical completion time.
    pub at: Cycle,
    /// Observing SM.
    pub sm: usize,
    /// This is the read half of an atomic: it observes the latest store
    /// *strictly before* its own key (its own write lives at the key).
    pub exclusive: bool,
}

type LoadEv = LoadObservation;

/// Collects load/store completions during a run and validates them at the
/// end (validation is deferred because a load's producing store may
/// complete — from the checker's viewpoint — after the load).
#[derive(Debug, Default)]
pub struct Checker {
    /// Committed stores per block, keyed by `(epoch, wts)`. Ordered maps
    /// throughout so violation reports come out in a deterministic order
    /// (the fault-injection tests compare reports byte for byte).
    stores: BTreeMap<BlockAddr, BTreeMap<(Epoch, Timestamp), Version>>,
    /// All versions ever stored per block (functional fallback).
    written: BTreeMap<BlockAddr, HashSet<Version>>,
    loads: BTreeMap<BlockAddr, Vec<LoadEv>>,
    n_events: u64,
    /// Highest completion key observed per SM (drives [`Checker::compact`]).
    frontier: BTreeMap<usize, (Epoch, Timestamp)>,
    /// Per block: the store key history was pruned up to. Loads arriving
    /// below it can no longer be validated exactly.
    horizon: BTreeMap<BlockAddr, (Epoch, Timestamp)>,
    /// Violations found by eager validation during [`Checker::compact`].
    early: Vec<Violation>,
    /// Keyed loads accepted without exact validation because their key
    /// fell below a compaction horizon (counted in `finish`, which is
    /// `&self` — hence the `Cell`).
    horizon_accepts: std::cell::Cell<u64>,
}

impl Checker {
    /// Creates an empty checker.
    #[must_use]
    pub fn new() -> Self {
        Checker::default()
    }

    /// Number of completions observed.
    #[must_use]
    pub fn n_events(&self) -> u64 {
        self.n_events
    }

    /// Feeds one completed access from SM `sm` at cycle `now`.
    pub fn on_completion(&mut self, sm: usize, c: &Completion, now: Cycle) {
        self.n_events += 1;
        if let Some(ts) = c.ts {
            let f = self.frontier.entry(sm).or_insert((c.epoch, ts));
            *f = (*f).max((c.epoch, ts));
        }
        match c.kind {
            AccessKind::Store => {
                self.written.entry(c.block).or_default().insert(c.version);
                if let Some(wts) = c.ts {
                    self.stores
                        .entry(c.block)
                        .or_default()
                        .insert((c.epoch, wts), c.version);
                }
            }
            AccessKind::Atomic => {
                // The write half is a store at the assigned wts; the read
                // half observed `prev` immediately before it.
                self.written.entry(c.block).or_default().insert(c.version);
                if let Some(wts) = c.ts {
                    self.stores
                        .entry(c.block)
                        .or_default()
                        .insert((c.epoch, wts), c.version);
                }
                if let Some(prev) = c.prev {
                    self.loads
                        .entry(c.block)
                        .or_default()
                        .push(LoadObservation {
                            key: c.ts.map(|t| (c.epoch, t)),
                            version: prev,
                            at: now,
                            sm,
                            exclusive: true,
                        });
                }
            }
            AccessKind::Load => {
                self.loads
                    .entry(c.block)
                    .or_default()
                    .push(LoadObservation {
                        key: c.ts.map(|t| (c.epoch, t)),
                        version: c.version,
                        at: now,
                        sm,
                        exclusive: false,
                    });
            }
        }
    }

    /// Loads observed on `block`, in completion order (litmus assertions).
    #[must_use]
    pub fn load_observations(&self, block: BlockAddr) -> Vec<LoadObservation> {
        let mut v = self.loads.get(&block).cloned().unwrap_or_default();
        v.sort_by_key(|l| l.at);
        v
    }

    /// Versions stored to `block`, in `(epoch, wts)` order (timestamp
    /// protocols only).
    #[must_use]
    pub fn store_order(&self, block: BlockAddr) -> Vec<Version> {
        self.stores
            .get(&block)
            .map(|m| m.values().copied().collect())
            .unwrap_or_default()
    }

    /// Validates all collected events; returns every violation found.
    #[must_use]
    pub fn finish(&self) -> Vec<Violation> {
        let mut out = self.early.clone();
        for (block, loads) in &self.loads {
            let stores = self.stores.get(block);
            let written = self.written.get(block);
            let horizon = self.horizon.get(block).copied();
            for ld in loads {
                match ld.key {
                    Some(key) => {
                        if horizon.is_some_and(|h| key < h) {
                            // The stores this load could legally observe
                            // were pruned by `compact`: accept leniently
                            // and count the imprecision.
                            self.horizon_accepts.set(self.horizon_accepts.get() + 1);
                            continue;
                        }
                        out.extend(keyed_violation(*block, ld, key, stores));
                    }
                    None => {
                        // Functional fallback: the version must exist.
                        let known = ld.version == Version::ZERO
                            || written.is_some_and(|w| w.contains(&ld.version));
                        if !known {
                            out.push(Violation(format!(
                                "phantom value at {block}: load by sm{} at {} observed {} which \
                                 no store produced",
                                ld.sm, ld.at, ld.version
                            )));
                        }
                    }
                }
            }
        }
        out
    }

    /// Like [`Checker::finish`], but first collapses *identical*
    /// violation lines (a fault-injected replay can make the same faulty
    /// message produce the same violation several times) into one line
    /// with a multiplicity, then truncates to at most `cap` distinct
    /// violations, replacing the overflow with a one-line summary. A
    /// stuck protocol can emit a violation per access; the cap keeps
    /// reports (and test logs) readable without hiding that more exist.
    #[must_use]
    pub fn finish_capped(&self, cap: usize) -> Vec<Violation> {
        let mut out: Vec<Violation> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut counts: Vec<usize> = Vec::new();
        for v in self.finish() {
            if let Some(&i) = index.get(&v.0) {
                counts[i] += 1;
            } else {
                index.insert(v.0.clone(), out.len());
                counts.push(1);
                out.push(v);
            }
        }
        for (v, &n) in out.iter_mut().zip(&counts) {
            if n > 1 {
                v.0.push_str(&format!(" (×{n} identical)"));
            }
        }
        if cap > 0 && out.len() > cap {
            let extra = out.len() - cap;
            out.truncate(cap);
            out.push(Violation(format!(
                "…and {extra} more violation(s) suppressed (cap {cap}; raise \
                 GpuConfig::max_violations_reported to see all)"
            )));
        }
        out
    }

    /// Number of retained store and load records (the checker's memory
    /// footprint, which [`Checker::compact`] bounds on long soaks).
    #[must_use]
    pub fn retained_events(&self) -> usize {
        self.stores.values().map(BTreeMap::len).sum::<usize>()
            + self.loads.values().map(Vec::len).sum::<usize>()
    }

    /// Keyed loads accepted without exact validation because a
    /// [`Checker::compact`] horizon had pruned their candidate stores
    /// (0 unless `compact` ran; populated by `finish`).
    #[must_use]
    pub fn horizon_accepts(&self) -> u64 {
        self.horizon_accepts.get()
    }

    /// Bounds the checker's memory on long runs by pruning history that
    /// is globally visible.
    ///
    /// For each SM the checker tracks the highest completion key it has
    /// produced; the minimum over those frontiers is taken as *globally
    /// visible*: every SM has logically advanced past it. Per block, the
    /// latest store at or below that frontier becomes the new base:
    /// loads strictly below the base are validated eagerly (their
    /// candidate stores are all still present) and drained, and stores
    /// strictly below the base are pruned. The base key is remembered as
    /// the block's *horizon*; a keyed load that later arrives below it
    /// (possible — per-SM frontiers are maxima over warps, and a lagging
    /// warp can complete out of order) is accepted without exact
    /// validation and counted in [`Checker::horizon_accepts`]. This is
    /// the documented incompleteness that buys bounded memory; `finish`
    /// on an uncompacted checker is exact.
    ///
    /// Everything here iterates ordered maps, so a compacted run remains
    /// byte-for-byte reproducible for a given seed.
    pub fn compact(&mut self) {
        let Some(visible) = self.frontier.values().min().copied() else {
            return;
        };
        for (block, stores) in &mut self.stores {
            let Some((&base, _)) = stores.range(..=visible).next_back() else {
                continue;
            };
            if let Some(loads) = self.loads.get_mut(block) {
                let mut kept = Vec::with_capacity(loads.len());
                for ld in loads.drain(..) {
                    match ld.key {
                        Some(key) if key < base => {
                            self.early
                                .extend(keyed_violation(*block, &ld, key, Some(stores)));
                        }
                        _ => kept.push(ld),
                    }
                }
                *loads = kept;
            }
            // Retain the base store itself: it is the expected value for
            // every remaining load at or above the horizon.
            let keep = stores.split_off(&base);
            if let Some(w) = self.written.get_mut(block) {
                for v in stores.values() {
                    w.remove(v);
                }
            }
            *stores = keep;
            self.horizon.insert(*block, base);
        }
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl Snap for Violation {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Violation(Snap::load(r)?))
    }
}

gtsc_types::snap_fields!(LoadObservation {
    key,
    version,
    at,
    sm,
    exclusive,
});

// Manual rather than `snap_fields!` because `horizon_accepts` lives in a
// `Cell` (saved/restored by value).
impl Snap for Checker {
    fn save(&self, w: &mut SnapWriter) {
        self.stores.save(w);
        self.written.save(w);
        self.loads.save(w);
        self.n_events.save(w);
        self.frontier.save(w);
        self.horizon.save(w);
        self.early.save(w);
        self.horizon_accepts.get().save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Checker {
            stores: Snap::load(r)?,
            written: Snap::load(r)?,
            loads: Snap::load(r)?,
            n_events: Snap::load(r)?,
            frontier: Snap::load(r)?,
            horizon: Snap::load(r)?,
            early: Snap::load(r)?,
            horizon_accepts: std::cell::Cell::new(Snap::load(r)?),
        })
    }
}

/// The timestamp-ordering check for one keyed load: the expected version
/// is the latest store at or before the load's logical time (strictly
/// before, for an atomic's read half).
fn keyed_violation(
    block: BlockAddr,
    ld: &LoadObservation,
    key: (Epoch, Timestamp),
    stores: Option<&BTreeMap<(Epoch, Timestamp), Version>>,
) -> Option<Violation> {
    let expected = if ld.exclusive {
        stores
            .and_then(|m| m.range(..key).next_back())
            .map_or(Version::ZERO, |(_, v)| *v)
    } else {
        stores
            .and_then(|m| m.range(..=key).next_back())
            .map_or(Version::ZERO, |(_, v)| *v)
    };
    (ld.version != expected).then(|| {
        Violation(format!(
            "timestamp-order violation at {block}: load by sm{} at {} \
             with key (e{}, {}) observed {} but the latest store ≤ key wrote {}",
            ld.sm, ld.at, key.0, key.1, ld.version, expected
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::AccessId;
    use gtsc_types::WarpId;

    fn store(block: u64, wts: u64, version: u64, epoch: Epoch) -> Completion {
        Completion {
            id: AccessId(0),
            warp: WarpId(0),
            kind: AccessKind::Store,
            block: BlockAddr(block),
            version: Version(version),
            ts: Some(Timestamp(wts)),
            epoch,
            prev: None,
        }
    }

    fn load(block: u64, ts: u64, version: u64, epoch: Epoch) -> Completion {
        Completion {
            id: AccessId(0),
            warp: WarpId(0),
            kind: AccessKind::Load,
            block: BlockAddr(block),
            version: Version(version),
            ts: Some(Timestamp(ts)),
            epoch,
            prev: None,
        }
    }

    #[test]
    fn consistent_history_passes() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 12, 100, 0), Cycle(10));
        ch.on_completion(1, &load(5, 5, 0, 0), Cycle(20)); // before the store: initial value
        ch.on_completion(1, &load(5, 12, 100, 0), Cycle(5)); // at the store's wts
        ch.on_completion(1, &load(5, 30, 100, 0), Cycle(30));
        assert!(ch.finish().is_empty());
        assert_eq!(ch.n_events(), 4);
    }

    #[test]
    fn reading_future_value_is_flagged() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 12, 100, 0), Cycle(10));
        // Load at logical time 6 observes the value written at 12: the
        // Figure 10 violation.
        ch.on_completion(1, &load(5, 6, 100, 0), Cycle(3));
        let v = ch.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].0.contains("timestamp-order violation"));
    }

    #[test]
    fn reading_stale_value_is_flagged() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 12, 100, 0), Cycle(10));
        ch.on_completion(0, &store(5, 25, 200, 0), Cycle(20));
        // Load at ts 30 must see version 200, not 100.
        ch.on_completion(1, &load(5, 30, 100, 0), Cycle(40));
        assert_eq!(ch.finish().len(), 1);
    }

    #[test]
    fn epochs_order_lexicographically() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 60_000, 100, 0), Cycle(10));
        // After a rollover the same block is rewritten at a tiny wts in
        // epoch 1; loads in epoch 1 must see the newer store.
        ch.on_completion(0, &store(5, 5, 200, 1), Cycle(100));
        ch.on_completion(1, &load(5, 2, 100, 1), Cycle(150)); // (1,2) < (1,5): still v100
        ch.on_completion(1, &load(5, 9, 200, 1), Cycle(160));
        assert!(ch.finish().is_empty());
    }

    fn atomic(block: u64, wts: u64, version: u64, prev: u64) -> Completion {
        Completion {
            id: AccessId(0),
            warp: WarpId(0),
            kind: AccessKind::Atomic,
            block: BlockAddr(block),
            version: Version(version),
            ts: Some(Timestamp(wts)),
            epoch: 0,
            prev: Some(Version(prev)),
        }
    }

    #[test]
    fn atomic_read_half_is_exclusive_of_its_own_write() {
        let mut ch = Checker::new();
        // An atomic at wts 10 observing the initial value: its own store
        // (at the same key) must not satisfy its read half.
        ch.on_completion(0, &atomic(5, 10, 100, 0), Cycle(1));
        assert!(ch.finish().is_empty());
        // A second atomic at wts 20 must observe the first's version.
        ch.on_completion(1, &atomic(5, 20, 200, 100), Cycle(2));
        assert!(ch.finish().is_empty());
        // A later load at ts 25 sees the second atomic's write half.
        ch.on_completion(2, &load(5, 25, 200, 0), Cycle(3));
        assert!(ch.finish().is_empty());
    }

    #[test]
    fn atomic_observing_wrong_predecessor_is_flagged() {
        let mut ch = Checker::new();
        ch.on_completion(0, &atomic(5, 10, 100, 0), Cycle(1));
        // Claims to have observed the initial value although version 100
        // was written at wts 10 < 20: a lost update.
        ch.on_completion(1, &atomic(5, 20, 200, 0), Cycle(2));
        let v = ch.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].0.contains("timestamp-order violation"));
    }

    #[test]
    fn functional_fallback_flags_phantom_versions() {
        let mut ch = Checker::new();
        let mut c = load(5, 0, 12345, 0);
        c.ts = None;
        ch.on_completion(0, &c, Cycle(5));
        let v = ch.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].0.contains("phantom"));
    }

    #[test]
    fn finish_capped_truncates_with_summary() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 12, 100, 0), Cycle(10));
        for i in 0..10 {
            // Ten future-reads: ten violations.
            ch.on_completion(1, &load(5, 6, 100, 0), Cycle(3 + i));
        }
        assert_eq!(ch.finish().len(), 10);
        let capped = ch.finish_capped(3);
        assert_eq!(capped.len(), 4);
        assert!(capped[3].0.contains("7 more"), "{:?}", capped[3]);
        // A cap of 0 means unlimited.
        assert_eq!(ch.finish_capped(0).len(), 10);
        // Under the cap: untouched.
        assert_eq!(ch.finish_capped(100).len(), 10);
    }

    #[test]
    fn finish_capped_collapses_identical_violations() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 12, 100, 0), Cycle(10));
        // Three byte-identical future-reads (same cycle, same key) plus
        // one distinct: the report shows two lines, not four.
        for _ in 0..3 {
            ch.on_completion(1, &load(5, 6, 100, 0), Cycle(3));
        }
        ch.on_completion(1, &load(5, 7, 100, 0), Cycle(3));
        assert_eq!(ch.finish().len(), 4);
        let capped = ch.finish_capped(64);
        assert_eq!(capped.len(), 2);
        assert!(capped[0].0.contains("(×3 identical)"), "{:?}", capped[0]);
        assert!(!capped[1].0.contains("identical"), "{:?}", capped[1]);
    }

    #[test]
    fn compact_prunes_history_and_keeps_exactness_above_base() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 10, 100, 0), Cycle(1));
        ch.on_completion(0, &store(5, 20, 200, 0), Cycle(2));
        ch.on_completion(0, &store(5, 30, 300, 0), Cycle(3));
        ch.on_completion(1, &load(5, 15, 100, 0), Cycle(4));
        // Frontiers: sm0 = (0,30), sm1 = (0,25) ⇒ visible = (0,25),
        // base = the store at (0,20).
        ch.on_completion(1, &load(5, 25, 200, 0), Cycle(5));
        let before = ch.retained_events();
        ch.compact();
        assert!(ch.retained_events() < before);
        // The store at wts 10 and the validated load at ts 15 are gone;
        // the base store (wts 20) and everything above it remain.
        assert_eq!(
            ch.store_order(BlockAddr(5)),
            vec![Version(200), Version(300)]
        );
        // Validation above the base stays exact.
        ch.on_completion(1, &load(5, 35, 200, 0), Cycle(6)); // stale: must see 300
        assert_eq!(ch.finish().len(), 1);
        assert_eq!(ch.horizon_accepts(), 0);
    }

    #[test]
    fn compact_validates_drained_loads_eagerly() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 10, 100, 0), Cycle(1));
        ch.on_completion(0, &store(5, 20, 200, 0), Cycle(2));
        // Future-read below the eventual base: flagged at compact time.
        ch.on_completion(1, &load(5, 5, 100, 0), Cycle(3));
        ch.on_completion(1, &load(5, 25, 200, 0), Cycle(4));
        ch.compact();
        let v = ch.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].0.contains("timestamp-order violation"), "{:?}", v[0]);
    }

    #[test]
    fn late_load_below_horizon_is_accepted_and_counted() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 10, 100, 0), Cycle(1));
        ch.on_completion(0, &store(5, 20, 200, 0), Cycle(2));
        ch.on_completion(1, &load(5, 25, 200, 0), Cycle(3));
        ch.compact();
        // A lagging warp completes a load below the horizon with a value
        // the pruned history can no longer validate: accepted leniently.
        ch.on_completion(1, &load(5, 5, 100, 0), Cycle(4));
        assert!(ch.finish().is_empty());
        assert_eq!(ch.horizon_accepts(), 1);
    }

    #[test]
    fn compact_is_idempotent_on_clean_history() {
        let mut ch = Checker::new();
        ch.on_completion(0, &store(5, 10, 100, 0), Cycle(1));
        ch.on_completion(1, &load(5, 15, 100, 0), Cycle(2));
        ch.compact();
        ch.compact();
        assert!(ch.finish().is_empty());
        // An empty checker compacts without panicking.
        Checker::new().compact();
    }

    #[test]
    fn functional_fallback_accepts_known_versions() {
        let mut ch = Checker::new();
        let mut st = store(5, 0, 77, 0);
        st.ts = None;
        ch.on_completion(0, &st, Cycle(1));
        let mut ld = load(5, 0, 77, 0);
        ld.ts = None;
        ch.on_completion(1, &ld, Cycle(2));
        let mut ld0 = load(5, 0, 0, 0);
        ld0.ts = None;
        ch.on_completion(1, &ld0, Cycle(3));
        assert!(ch.finish().is_empty());
    }
}
