//! The multi-GPU simulator: N on-die GPU hierarchies joined by an
//! inter-GPU fabric to a home-node directory (DESIGN.md §17).
//!
//! Each device is a full [`GpuSim`](crate::GpuSim)-shaped hierarchy —
//! SMs with G-TSC L1s, two on-die crossbars, and banked
//! [`DeviceL2`]s — except that the device L2 owns no timestamps of its
//! own: it serves local L1s out of inter-GPU grants delegated by the
//! [`HomeNode`], and every L1 lease it hands out is `nest_rts`-clamped
//! inside a live grant. The fabric reuses [`ReliableNet`] as the link
//! layer, configured lossier and longer-latency than the on-die NoC
//! (`FabricConfig`), with scheduled link-down windows (partitions) and
//! whole-device crash/rejoin events on top.
//!
//! Robustness composes the existing machinery rather than adding new
//! protocol states: a device crash folds into the Section V-D global
//! epoch bump exactly like an on-die bank crash (with same-cycle fabric
//! flow teardown so pre-crash sequence state never collides with the
//! rejoined device); partitions are ridden out by transport
//! retransmit/backoff plus the L1s' end-to-end retry; and the home's
//! store-replay filter re-acks duplicates with the original
//! acknowledgement so retried stores stay idempotent.

use std::collections::BTreeMap;

use gtsc_fabric::{DeviceL2, DeviceParams, HomeNode, HomeParams};
use gtsc_faults::{BankFaults, FaultPlan};
use gtsc_gpu::{Kernel, Sm, SmParams};
use gtsc_noc::ReliableNet;
use gtsc_protocol::msg::{Epoch, L1ToL2, L2ToL1, MsgSizes};
use gtsc_trace::{merge_tails, Sanitizer, Scope, TraceEvent, Tracer};
use gtsc_types::snap::{crc32, Snap, SnapWriter, SnapshotBuilder, SnapshotError, SnapshotFile};
use gtsc_types::{
    BlockAddr, CtaId, Cycle, CycleReason, FaultConfig, MultiGpuConfig, ProtocolKind, SimStats,
    SmId, Version,
};

use crate::build::build_l1;
use crate::check::{Checker, Violation};
use crate::gpu::{DeviceStall, KernelProgress, RunReport, SimError, StallDiagnosis};

/// One GPU device of the multi-GPU system: its SMs (each with a G-TSC
/// L1), its on-die request/response crossbars, and its banked device L2.
struct Device {
    sms: Vec<Sm>,
    l2: Vec<DeviceL2>,
    req_net: ReliableNet<(usize, L1ToL2)>,
    resp_net: ReliableNet<L2ToL1>,
}

/// The assembled multi-GPU system.
pub struct MultiGpuSim {
    cfg: MultiGpuConfig,
    devices: Vec<Device>,
    home: HomeNode,
    /// Fabric, device → home. Payloads are `(device, request)`; the
    /// single destination is the home node.
    up_net: ReliableNet<(usize, L1ToL2)>,
    /// Fabric, home → device.
    down_net: ReliableNet<L2ToL1>,
    /// Per-device crash schedulers; `None` when device crashes are off.
    device_faults: Vec<Option<BankFaults>>,
    /// Devices crash-recovered so far.
    device_recoveries: u64,
    /// On-die message sizes (per-device crossbars).
    sizes: MsgSizes,
    /// Fabric message sizes (inter-GPU links).
    fabric_sizes: MsgSizes,
    now: Cycle,
    epoch: Epoch,
    checker: Checker,
    sanitizer: Sanitizer,
    steps: u64,
}

impl std::fmt::Debug for MultiGpuSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiGpuSim")
            .field("config", &self.cfg.label())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// Retained checker events above which [`Checker::compact`] runs.
const COMPACT_RETAINED_THRESHOLD: usize = 1 << 20;
/// How often (in cycles) the run loop polls the checker's footprint.
const COMPACT_POLL_CYCLES: u64 = 4096;

impl MultiGpuSim {
    /// Assembles the system per `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is degenerate; use [`MultiGpuSim::try_build`] for
    /// a structured error.
    #[must_use]
    pub fn new(cfg: MultiGpuConfig) -> Self {
        // lint: allow(panic): the documented infallible shorthand.
        Self::try_build(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Assembles the system, validating the configuration and arming the
    /// fault plans: per-device on-die plans draw from device-decorrelated
    /// seeds, the fabric plan (loss, partitions, device crashes) from
    /// `cfg.fabric.faults`. Whenever the fabric can lose traffic
    /// (`FabricConfig::lossy_active`) the fabric transport and every
    /// L1's end-to-end retry are armed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config is degenerate
    /// or selects a non-G-TSC protocol (the fabric speaks timestamps).
    pub fn try_build(cfg: MultiGpuConfig) -> Result<Self, SimError> {
        let mut cfg = cfg;
        if cfg.n_devices == 0 || cfg.gpu.n_sms == 0 || cfg.gpu.l2_banks == 0 {
            return Err(SimError::InvalidConfig(format!(
                "multi-GPU config must have devices, SMs, and banks \
                 (n_devices={}, n_sms={}, l2_banks={})",
                cfg.n_devices, cfg.gpu.n_sms, cfg.gpu.l2_banks
            )));
        }
        if cfg.gpu.protocol != ProtocolKind::Gtsc {
            return Err(SimError::InvalidConfig(format!(
                "the inter-GPU fabric delegates timestamp grants and only \
                 speaks G-TSC (got {:?})",
                cfg.gpu.protocol
            )));
        }
        let gpu_plan = FaultPlan::new(cfg.gpu.faults);
        cfg.gpu.ts_bits = gpu_plan.effective_ts_bits(cfg.gpu.ts_bits);
        // A Section V-D reset rebases every home grant to `[INIT,
        // grant_lease]`; if that already consumes most of the timestamp
        // budget, the next extension overflows again and the system
        // livelocks in perpetual resets. Demand at least 2× headroom.
        if cfg.gpu.ts_bits < 64
            && cfg.fabric.grant_lease.0.saturating_mul(2) >= 1u64 << cfg.gpu.ts_bits
        {
            return Err(SimError::InvalidConfig(format!(
                "inter-GPU grant lease {} cannot roll over inside {} timestamp bits \
                 (a reset rebases grants to the full lease; shrink the lease or widen ts_bits)",
                cfg.fabric.grant_lease.0, cfg.gpu.ts_bits
            )));
        }
        let n_devices = cfg.n_devices;
        let n_sms = cfg.gpu.n_sms;
        let n_banks = cfg.gpu.l2_banks;
        let l1_retry = cfg.gpu.faults.lossy_active() || cfg.fabric.lossy_active();
        let mut devices: Vec<Device> = (0..n_devices)
            .map(|d| {
                // Decorrelate each device's on-die fault streams while
                // keeping the whole system a pure function of the seeds.
                let dev_faults = FaultConfig {
                    seed: cfg
                        .gpu
                        .faults
                        .seed
                        .wrapping_add((d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..cfg.gpu.faults
                };
                let plan = FaultPlan::new(dev_faults);
                let mut sms: Vec<Sm> = (0..n_sms)
                    .map(|i| {
                        let global = d * n_sms + i;
                        Sm::new(
                            SmParams {
                                id: SmId(global as u16),
                                n_warp_slots: cfg.gpu.warps_per_sm,
                                block_shift: cfg.gpu.l1.block_shift(),
                                consistency: cfg.gpu.consistency,
                                max_outstanding_per_warp: cfg.gpu.max_outstanding_per_warp,
                                max_ctas: cfg.gpu.max_ctas_per_sm,
                                issue_width: 1,
                                scheduler: cfg.gpu.scheduler,
                            },
                            // Globally-unique SM index: version minting
                            // must not collide across devices.
                            build_l1(&cfg.gpu, global),
                        )
                    })
                    .collect();
                let l2: Vec<DeviceL2> = (0..n_banks)
                    .map(|_| {
                        DeviceL2::new(DeviceParams {
                            lease: cfg.gpu.lease,
                            latency: cfg.gpu.l2_latency,
                            ports: 2,
                        })
                    })
                    .collect();
                let mut req_net = ReliableNet::new(n_sms, n_banks, cfg.gpu.noc, cfg.gpu.transport);
                let mut resp_net = ReliableNet::new(n_banks, n_sms, cfg.gpu.noc, cfg.gpu.transport);
                req_net.set_faults(plan.noc(0), plan.noc(2));
                resp_net.set_faults(plan.noc(1), plan.noc(3));
                if dev_faults.lossy_active() {
                    req_net.enable(dev_faults.seed ^ 0x5245_515F);
                    resp_net.enable(dev_faults.seed ^ 0x5245_5350);
                }
                if l1_retry {
                    for sm in &mut sms {
                        sm.l1_mut().enable_retry(cfg.gpu.transport.retry_timeout);
                    }
                }
                Device {
                    sms,
                    l2,
                    req_net,
                    resp_net,
                }
            })
            .collect();
        let mut home = HomeNode::new(HomeParams {
            lease: cfg.fabric.grant_lease,
            ts_bits: cfg.gpu.ts_bits,
            latency: cfg.fabric.home_latency,
        });
        let mut up_net = ReliableNet::new(n_devices, 1, cfg.fabric.noc, cfg.fabric.transport);
        let mut down_net = ReliableNet::new(1, n_devices, cfg.fabric.noc, cfg.fabric.transport);
        let fabric_plan = FaultPlan::new(cfg.fabric.faults);
        up_net.set_faults(fabric_plan.fabric(0), fabric_plan.fabric(2));
        down_net.set_faults(fabric_plan.fabric(1), fabric_plan.fabric(3));
        if cfg.fabric.partitions_active() {
            // A partition takes the whole cable down: the same window
            // schedule severs the device's up and down links together.
            for d in 0..n_devices {
                let lf = fabric_plan.link_down(
                    d as u64,
                    cfg.fabric.partition_count,
                    cfg.fabric.partition_window,
                    cfg.fabric.partition_len,
                );
                up_net.set_link_faults(d, 0, lf.clone());
                down_net.set_link_faults(0, d, lf);
            }
        }
        if cfg.fabric.lossy_active() {
            up_net.enable(cfg.fabric.faults.seed ^ 0x4641_5550);
            down_net.enable(cfg.fabric.faults.seed ^ 0x4641_444E);
        }
        let device_faults: Vec<Option<BankFaults>> = (0..n_devices)
            .map(|d| {
                fabric_plan.device_crashes(
                    d as u64,
                    n_devices as u64,
                    cfg.fabric.device_crash_count,
                    cfg.fabric.device_crash_window,
                )
            })
            .collect();
        if cfg.gpu.trace.is_enabled() {
            for (d, dev) in devices.iter_mut().enumerate() {
                for (i, sm) in dev.sms.iter_mut().enumerate() {
                    let g = (d * n_sms + i) as u16;
                    sm.set_tracer(Tracer::new(Scope::Sm(g), &cfg.gpu.trace));
                    sm.l1_mut()
                        .set_tracer(Tracer::new(Scope::Sm(g), &cfg.gpu.trace));
                }
                for bank in dev.l2.iter_mut() {
                    bank.set_tracer(Tracer::new(Scope::Device(d as u16), &cfg.gpu.trace));
                }
                dev.req_net
                    .set_tracer(Tracer::new(Scope::Noc(2 * d as u16), &cfg.gpu.trace));
                dev.resp_net
                    .set_tracer(Tracer::new(Scope::Noc(2 * d as u16 + 1), &cfg.gpu.trace));
            }
            home.set_tracer(Tracer::new(Scope::Home(0), &cfg.gpu.trace));
            up_net.set_tracer(Tracer::new(
                Scope::Noc(2 * n_devices as u16),
                &cfg.gpu.trace,
            ));
            down_net.set_tracer(Tracer::new(
                Scope::Noc(2 * n_devices as u16 + 1),
                &cfg.gpu.trace,
            ));
        }
        let sanitizer = if cfg.gpu.sanitize {
            Sanitizer::enabled(Scope::Sm(0))
        } else {
            Sanitizer::disabled()
        };
        if sanitizer.is_enabled() {
            for (d, dev) in devices.iter_mut().enumerate() {
                for (i, sm) in dev.sms.iter_mut().enumerate() {
                    sm.l1_mut()
                        .set_sanitizer(sanitizer.for_scope(Scope::Sm((d * n_sms + i) as u16)));
                }
                for bank in dev.l2.iter_mut() {
                    bank.set_sanitizer(sanitizer.for_scope(Scope::Device(d as u16)));
                }
            }
            home.set_sanitizer(sanitizer.for_scope(Scope::Home(0)));
        }
        let sizes = MsgSizes::new(
            cfg.gpu.noc.control_bytes,
            cfg.gpu.ts_bits,
            cfg.gpu.l1.block_size(),
        );
        let fabric_sizes = MsgSizes::new(
            cfg.fabric.noc.control_bytes,
            cfg.gpu.ts_bits,
            cfg.gpu.l1.block_size(),
        );
        Ok(MultiGpuSim {
            cfg,
            devices,
            home,
            up_net,
            down_net,
            device_faults,
            device_recoveries: 0,
            sizes,
            fabric_sizes,
            now: Cycle(0),
            epoch: 0,
            checker: Checker::new(),
            sanitizer,
            steps: 0,
        })
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MultiGpuConfig {
        &self.cfg
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Devices crash-recovered so far.
    #[must_use]
    pub fn device_recoveries(&self) -> u64 {
        self.device_recoveries
    }

    /// The current global reset epoch (Section V-D, shared by the home
    /// node and every device).
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Read-only access to the coherence checker.
    #[must_use]
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// The root handle on the transition sanitizer (disabled unless
    /// `cfg.gpu.sanitize`).
    #[must_use]
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// The functional memory image — the home node's, which is always
    /// authoritative under write-through.
    #[must_use]
    pub fn memory_image(&self) -> BTreeMap<BlockAddr, Version> {
        self.home.memory_image().into_iter().collect()
    }

    /// Runs `kernel` to completion across all devices (CTA `c` is pinned
    /// to device `c % n_devices`, round-robin across that device's SMs),
    /// then flushes every private cache.
    ///
    /// # Errors
    ///
    /// As for [`crate::GpuSim::run_kernel`].
    pub fn run_kernel(&mut self, kernel: &dyn Kernel) -> Result<RunReport, SimError> {
        let mut progress = KernelProgress::new(kernel);
        let report = self.advance_kernel(kernel, &mut progress, 0)?;
        report.map_or_else(
            || {
                Err(SimError::InvalidConfig(
                    "unbounded advance_kernel yielded no report".to_owned(),
                ))
            },
            Ok,
        )
    }

    /// Advances `kernel` by at most `max_cycles` cycles (`0` =
    /// unbounded), carrying dispatch and watchdog state in `progress` so
    /// a run can be sliced and checkpointed via
    /// [`MultiGpuSim::save_snapshot`]. Slicing is invisible: any budget
    /// sequence reproduces one uninterrupted run.
    ///
    /// # Errors
    ///
    /// As for [`crate::GpuSim::advance_kernel`].
    pub fn advance_kernel(
        &mut self,
        kernel: &dyn Kernel,
        progress: &mut KernelProgress,
        max_cycles: u64,
    ) -> Result<Option<RunReport>, SimError> {
        if kernel.warps_per_cta() > self.cfg.gpu.warps_per_sm {
            return Err(SimError::InvalidKernel(format!(
                "CTA wider than an SM: kernel '{}' needs {} warps per CTA but SMs have {} slots",
                kernel.name(),
                kernel.warps_per_cta(),
                self.cfg.gpu.warps_per_sm
            )));
        }
        if !progress.matches(kernel) {
            return Err(SimError::InvalidKernel(format!(
                "progress for kernel '{}' cannot resume kernel '{}'",
                progress.kernel_name,
                kernel.name(),
            )));
        }
        let n_ctas = kernel.n_ctas();
        let n_devices = self.devices.len();
        let mut budget = max_cycles;
        loop {
            // CTA dispatch: CTA c is pinned to device c % n_devices (a
            // deterministic spread that puts true sharing on the fabric),
            // round-robin across that device's SMs. Dispatch is in-order:
            // a full device parks the grid tail until it drains.
            'dispatch: while progress.next_cta < n_ctas {
                let cta = CtaId(progress.next_cta as u32);
                let dev = progress.next_cta % n_devices;
                let warps = kernel.warps_per_cta();
                let n_sms = self.devices[dev].sms.len();
                let Some(offset) = (0..n_sms).find(|k| {
                    self.devices[dev].sms[(progress.sm_cursor + k) % n_sms].can_accept_cta(warps)
                }) else {
                    break 'dispatch;
                };
                let picked = (progress.sm_cursor + offset) % n_sms;
                progress.sm_cursor = (picked + 1) % n_sms;
                let programs = (0..warps).map(|w| kernel.program(cta, w)).collect();
                self.devices[dev].sms[picked].assign_cta(cta, programs);
                progress.next_cta += 1;
            }

            self.step();

            if self.now.0.is_multiple_of(COMPACT_POLL_CYCLES)
                && self.checker.retained_events() >= COMPACT_RETAINED_THRESHOLD
            {
                self.checker.compact();
            }

            if progress.next_cta == n_ctas && self.all_idle() {
                break;
            }
            let fingerprint = (
                self.checker.n_events(),
                self.devices
                    .iter()
                    .flat_map(|d| d.sms.iter().map(Sm::issued_count))
                    .sum::<u64>(),
                progress.next_cta,
                self.devices
                    .iter()
                    .flat_map(|d| d.sms.iter().map(Sm::resident_warps))
                    .sum::<usize>(),
                self.devices
                    .iter()
                    .map(|d| d.req_net.progress_mark() + d.resp_net.progress_mark())
                    .sum::<u64>()
                    + self.up_net.progress_mark()
                    + self.down_net.progress_mark(),
            );
            if fingerprint != progress.last_fingerprint {
                progress.last_fingerprint = fingerprint;
                progress.last_progress = self.now;
            } else if self.cfg.gpu.watchdog_cycles > 0
                && self.now - progress.last_progress >= self.cfg.gpu.watchdog_cycles
            {
                return Err(SimError::Stalled {
                    at: self.now,
                    diagnosis: Box::new(self.diagnose_stall(self.now - progress.last_progress)),
                });
            }
            self.now += 1;
            if self.cfg.gpu.max_cycles > 0 && self.now.0 > self.cfg.gpu.max_cycles {
                return Err(SimError::CycleLimit {
                    at: self.now,
                    resident_warps: self
                        .devices
                        .iter()
                        .flat_map(|d| d.sms.iter().map(Sm::resident_warps))
                        .sum(),
                });
            }
            if max_cycles > 0 {
                budget -= 1;
                if budget == 0 {
                    return Ok(None);
                }
            }
        }
        for dev in &mut self.devices {
            for sm in &mut dev.sms {
                sm.l1_mut().flush();
            }
        }
        Ok(Some(self.report()))
    }

    /// The current aggregated statistics and violations.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let mut violations = self
            .checker
            .finish_capped(self.cfg.gpu.max_violations_reported);
        violations.extend(self.sanitizer.violations().into_iter().map(Violation));
        let suppressed = self.sanitizer.suppressed();
        if suppressed > 0 {
            violations.push(Violation(format!(
                "…and {suppressed} more sanitizer violation(s) suppressed (retention cap)"
            )));
        }
        let stats = self.cumulative_stats();
        for (i, sm) in stats.per_sm.iter().enumerate() {
            let sum = sm.cycle_buckets.sum();
            if sum != stats.accounted_cycles {
                violations.push(Violation(format!(
                    "cycle accounting broken on sm{i}: reason buckets sum to {sum} \
                     but {} cycles were stepped",
                    stats.accounted_cycles
                )));
            }
        }
        let trace_tail = if violations.is_empty() || !self.cfg.gpu.trace.is_enabled() {
            Vec::new()
        } else {
            self.flight_tail()
        };
        RunReport {
            stats,
            violations,
            trace_tail,
        }
    }

    fn cumulative_stats(&self) -> SimStats {
        let mut stats = SimStats {
            cycles: self.now,
            accounted_cycles: self.steps,
            ..SimStats::default()
        };
        for dev in &self.devices {
            for sm in &dev.sms {
                let s = sm.stats();
                let l1 = sm.l1().stats();
                stats.sm.merge(&s);
                stats.l1.merge(&l1);
                stats.per_sm.push(s);
                stats.per_l1.push(l1);
            }
            for bank in &dev.l2 {
                let s = bank.stats();
                stats.l2.merge(&s);
                stats.per_l2.push(s);
            }
            stats.noc.merge(&dev.req_net.stats());
            stats.noc.merge(&dev.resp_net.stats());
        }
        // The home directory reports in the L2 column too — it is the
        // system's outermost shared cache level.
        let home = self.home.stats();
        stats.l2.merge(&home);
        stats.per_l2.push(home);
        stats.noc.merge(&self.up_net.stats());
        stats.noc.merge(&self.down_net.stats());
        let mut transport = self.up_net.transport_stats();
        transport.merge(&self.down_net.transport_stats());
        for dev in &self.devices {
            transport.merge(&dev.req_net.transport_stats());
            transport.merge(&dev.resp_net.transport_stats());
        }
        transport.bank_recoveries = self.device_recoveries;
        stats.transport = transport;
        stats
    }

    /// Every retained trace event across all components, cycle-ordered.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for dev in &self.devices {
            for sm in &dev.sms {
                all.extend_from_slice(sm.tracer().events());
                if let Some(t) = sm.l1().tracer() {
                    all.extend_from_slice(t.events());
                }
            }
            for bank in &dev.l2 {
                all.extend_from_slice(bank.tracer().events());
            }
            all.extend(dev.req_net.events());
            all.extend(dev.resp_net.events());
        }
        all.extend_from_slice(self.home.tracer().events());
        all.extend(self.up_net.events());
        all.extend(self.down_net.events());
        all.sort_by_key(|e| e.cycle);
        all
    }

    /// The merged flight-recorder tail across every component, oldest
    /// first — including the fabric nets, so a post-mortem on a lossy
    /// soak shows per-device fabric hotspots.
    #[must_use]
    pub fn flight_tail(&self) -> Vec<TraceEvent> {
        let mut tails = Vec::new();
        for dev in &self.devices {
            for sm in &dev.sms {
                tails.push(sm.tracer().flight_tail());
                if let Some(t) = sm.l1().tracer() {
                    tails.push(t.flight_tail());
                }
            }
            for bank in &dev.l2 {
                tails.push(bank.tracer().flight_tail());
            }
            tails.push(dev.req_net.flight_tail());
            tails.push(dev.resp_net.flight_tail());
        }
        tails.push(self.home.tracer().flight_tail());
        tails.push(self.up_net.flight_tail());
        tails.push(self.down_net.flight_tail());
        merge_tails(&tails)
    }

    /// Aggregated fault-injection counters across the on-die networks,
    /// the fabric, and the device-crash schedulers; `None` when the run
    /// is fault-free.
    #[must_use]
    pub fn fault_stats(&self) -> Option<gtsc_faults::FaultStats> {
        let mut any = false;
        let mut total = gtsc_faults::FaultStats::default();
        let nets = self
            .devices
            .iter()
            .flat_map(|d| [d.req_net.fault_stats(), d.resp_net.fault_stats()])
            .chain([self.up_net.fault_stats(), self.down_net.fault_stats()]);
        for s in nets
            .flatten()
            .chain(self.device_faults.iter().flatten().map(BankFaults::stats))
        {
            total.merge(&s);
            any = true;
        }
        any.then_some(total)
    }

    /// Device-scoped stall attribution, always available (not only when
    /// the watchdog fires) — `stress_faults` mines it on failures.
    #[must_use]
    pub fn device_stalls(&self) -> Vec<DeviceStall> {
        let now = self.now;
        let up_flows = self.up_net.flow_diagnostics(now);
        let down_flows = self.down_net.flow_diagnostics(now);
        self.devices
            .iter()
            .enumerate()
            .map(|(d, dev)| {
                let (mut expired, mut cold, mut stores) = (0, 0, 0);
                let mut grants = Vec::new();
                for bank in &dev.l2 {
                    let (e, c, s) = bank.stall_attribution();
                    expired += e;
                    cold += c;
                    stores += s;
                    grants.extend(bank.expired_grant_blocks());
                }
                grants.sort_unstable();
                let fabric_flows = up_flows
                    .iter()
                    .filter(|f| f.src == d)
                    .chain(down_flows.iter().filter(|f| f.dst == d))
                    .cloned()
                    .collect();
                DeviceStall {
                    device: d,
                    expired_grant_waits: expired,
                    cold_grant_waits: cold,
                    stores_awaiting_home: stores,
                    expired_grants: grants,
                    fabric_flows,
                }
            })
            .collect()
    }

    fn diagnose_stall(&self, stalled_for: u64) -> StallDiagnosis {
        let now = self.now;
        let n_sms = self.cfg.gpu.n_sms;
        StallDiagnosis {
            stalled_for,
            resident_warps: self
                .devices
                .iter()
                .flat_map(|d| d.sms.iter().map(Sm::resident_warps))
                .sum(),
            warps: self
                .devices
                .iter()
                .enumerate()
                .flat_map(|(d, dev)| {
                    dev.sms.iter().enumerate().flat_map(move |(i, sm)| {
                        sm.stalled_warps(now)
                            .into_iter()
                            .map(move |w| (d * n_sms + i, w))
                    })
                })
                .collect(),
            l1: self
                .devices
                .iter()
                .flat_map(|d| d.sms.iter().map(|sm| sm.l1().pressure()))
                .collect(),
            l2: self
                .devices
                .iter()
                .flat_map(|d| d.l2.iter().map(DeviceL2::pressure))
                .collect(),
            req_net_in_flight: self
                .devices
                .iter()
                .map(|d| d.req_net.in_flight())
                .sum::<usize>()
                + self.up_net.in_flight(),
            req_net_queued: self
                .devices
                .iter()
                .map(|d| d.req_net.queued())
                .sum::<usize>()
                + self.up_net.queued(),
            resp_net_in_flight: self
                .devices
                .iter()
                .map(|d| d.resp_net.in_flight())
                .sum::<usize>()
                + self.down_net.in_flight(),
            resp_net_queued: self
                .devices
                .iter()
                .map(|d| d.resp_net.queued())
                .sum::<usize>()
                + self.down_net.queued(),
            transport_unacked: self
                .devices
                .iter()
                .map(|d| d.req_net.unacked() + d.resp_net.unacked())
                .sum::<usize>()
                + self.up_net.unacked()
                + self.down_net.unacked(),
            req_transport_flows: self.up_net.flow_diagnostics(now),
            resp_transport_flows: self.down_net.flow_diagnostics(now),
            retransmits: self
                .devices
                .iter()
                .map(|d| {
                    d.req_net.transport_stats().retransmits
                        + d.resp_net.transport_stats().retransmits
                })
                .sum::<u64>()
                + self.up_net.transport_stats().retransmits
                + self.down_net.transport_stats().retransmits,
            dram_queued: 0,
            dram_in_flight: 0,
            epoch: self.epoch,
            ts_rollovers: self.home.stats().ts_rollovers,
            devices: self.device_stalls(),
            recent_events: self.flight_tail(),
        }
    }

    fn all_idle(&self) -> bool {
        self.devices.iter().all(|dev| {
            dev.sms.iter().all(Sm::is_idle)
                && dev.l2.iter().all(DeviceL2::is_idle)
                && dev.req_net.is_idle()
                && dev.resp_net.is_idle()
        }) && self.home.is_idle()
            && self.up_net.is_idle()
            && self.down_net.is_idle()
    }

    /// Crashes device `d` whole: every bank's grants and in-flight
    /// transactions vanish, and all transport flows touching the device
    /// — fabric *and* on-die — are generation-reset in the same cycle,
    /// so pre-crash sequence state can never collide with the rejoined
    /// device. The crash sets `needs_reset` on every bank, folding
    /// recovery into the Section V-D global epoch bump.
    fn crash_device(&mut self, d: usize, now: Cycle) {
        let dev = &mut self.devices[d];
        for (b, bank) in dev.l2.iter_mut().enumerate() {
            bank.crash(now);
            dev.req_net.reset_flows_to_dst(b, now);
            dev.resp_net.reset_flows_from_src(b, now);
        }
        self.up_net.reset_flows_from_src(d, now);
        self.down_net.reset_flows_to_dst(d, now);
        self.device_recoveries += 1;
    }

    /// One global clock cycle.
    fn step(&mut self) {
        let now = self.now;
        let n_banks = self.cfg.gpu.l2_banks;
        let n_sms = self.cfg.gpu.n_sms;

        // 1–4. Per device: SM issue, L1 housekeeping, on-die request
        // delivery, device-L2 service, fabric egress.
        for (d, dev) in self.devices.iter_mut().enumerate() {
            for (i, sm) in dev.sms.iter_mut().enumerate() {
                for c in sm.cycle(now) {
                    self.checker.on_completion(d * n_sms + i, &c, now);
                }
            }
            for (i, sm) in dev.sms.iter_mut().enumerate() {
                for c in sm.l1_mut().tick(now) {
                    sm.on_completion_at(&c, Some(now));
                    self.checker.on_completion(d * n_sms + i, &c, now);
                }
                while let Some(req) = sm.l1_mut().take_request() {
                    let bank = req.block().bank(n_banks);
                    let bytes = self.sizes.request_bytes(&req);
                    dev.req_net.send(i, bank, bytes, (i, req), now);
                }
            }
            for (bank, (src, msg)) in dev.req_net.tick(now) {
                dev.l2[bank].on_request(src, msg, now);
            }
            for bank in dev.l2.iter_mut() {
                bank.tick(now);
                while let Some(req) = bank.take_fabric_request() {
                    let bytes = self.fabric_sizes.request_bytes(&req);
                    self.up_net.send(d, 0, bytes, (d, req), now);
                }
            }
        }

        // 5. Fabric deliveries → home node directory.
        for (_, (d, msg)) in self.up_net.tick(now) {
            self.home.on_request(d, msg, now);
        }
        self.home.tick(now);
        while let Some((d, resp)) = self.home.take_response() {
            let bytes = self.fabric_sizes.response_bytes(&resp);
            self.down_net.send(0, d, bytes, resp, now);
        }

        // 6. Fabric deliveries → device L2 banks.
        for (d, msg) in self.down_net.tick(now) {
            let bank = msg.block().bank(n_banks);
            self.devices[d].l2[bank].on_fabric_response(msg, now);
        }

        // 7. Scheduled whole-device crashes.
        for d in 0..self.devices.len() {
            let due = self
                .device_faults
                .get_mut(d)
                .and_then(Option::as_mut)
                .is_some_and(|f| f.due(now.0));
            if due {
                self.crash_device(d, now);
            }
        }

        // 8. Global Section V-D reset: a home-side timestamp overflow or
        // any crashed device bumps the shared epoch everywhere at once.
        let rollover = self.home.needs_reset()
            || self
                .devices
                .iter()
                .any(|dev| dev.l2.iter().any(DeviceL2::needs_reset));
        if rollover {
            self.epoch += 1;
            self.home.apply_reset(self.epoch);
            for dev in &mut self.devices {
                for bank in &mut dev.l2 {
                    bank.apply_reset(self.epoch);
                }
            }
        }

        // 9–10. Per device: L2 responses → on-die response network → L1s;
        // cycle-reason accounting.
        for (d, dev) in self.devices.iter_mut().enumerate() {
            for (b, bank) in dev.l2.iter_mut().enumerate() {
                while let Some((dst, msg)) = bank.take_response() {
                    let bytes = self.sizes.response_bytes(&msg);
                    dev.resp_net.send(b, dst, bytes, msg, now);
                }
            }
            for (dst, msg) in dev.resp_net.tick(now) {
                let sm = &mut dev.sms[dst];
                for c in sm.l1_mut().on_response(msg, now) {
                    sm.on_completion_at(&c, Some(now));
                    self.checker.on_completion(d * n_sms + dst, &c, now);
                }
            }
            for sm in dev.sms.iter_mut() {
                let reason = if sm.issued_last_cycle() {
                    CycleReason::Issue
                } else if rollover {
                    CycleReason::RolloverFreeze
                } else if !sm.has_resident_warps() {
                    CycleReason::Idle
                } else {
                    match sm.l1().wait_hint() {
                        gtsc_protocol::WaitHint::LeaseExpired => CycleReason::LeaseExpiredWait,
                        gtsc_protocol::WaitHint::MshrFull => CycleReason::MshrFull,
                        gtsc_protocol::WaitHint::NocBackpressure => CycleReason::NocBackpressure,
                        gtsc_protocol::WaitHint::Downstream => CycleReason::DramWait,
                        gtsc_protocol::WaitHint::None => CycleReason::Idle,
                    }
                };
                sm.account_cycle(reason);
            }
        }
        self.steps += 1;
    }

    fn config_fingerprint(&self) -> u64 {
        let repr = format!("{:?}", self.cfg);
        (u64::from(crc32(repr.as_bytes())) << 32) | u64::from(crc32(self.cfg.label().as_bytes()))
    }

    /// Serializes the complete dynamic state of the multi-GPU machine —
    /// every device's SMs, L1s, device-L2 grants and waiters, on-die and
    /// fabric transport flows, the home directory, the checker, and the
    /// fault schedulers — into a versioned, per-section-CRC'd snapshot
    /// (DESIGN.md §14). Pass the in-flight [`KernelProgress`] to
    /// checkpoint mid-kernel.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if a controller cannot checkpoint.
    pub fn save_snapshot(
        &self,
        progress: Option<&KernelProgress>,
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut b = SnapshotBuilder::new();

        let mut w = SnapWriter::new();
        self.config_fingerprint().save(&mut w);
        b.section("meta", w.into_bytes());

        let mut w = SnapWriter::new();
        self.now.save(&mut w);
        self.epoch.save(&mut w);
        self.device_recoveries.save(&mut w);
        self.device_faults.save(&mut w);
        self.sanitizer.save_state(&mut w);
        self.steps.save(&mut w);
        b.section("sim", w.into_bytes());

        let mut w = SnapWriter::new();
        w.usize(self.devices.len());
        for dev in &self.devices {
            w.usize(dev.sms.len());
            for sm in &dev.sms {
                sm.save_state(&mut w)?;
            }
            w.usize(dev.l2.len());
            for bank in &dev.l2 {
                bank.save_state(&mut w);
            }
        }
        b.section("devices", w.into_bytes());

        let mut w = SnapWriter::new();
        for dev in &self.devices {
            dev.req_net.save_state(&mut w);
            dev.resp_net.save_state(&mut w);
        }
        b.section("nets", w.into_bytes());

        let mut w = SnapWriter::new();
        self.up_net.save_state(&mut w);
        self.down_net.save_state(&mut w);
        b.section("fabric", w.into_bytes());

        let mut w = SnapWriter::new();
        self.home.save_state(&mut w);
        b.section("home", w.into_bytes());

        let mut w = SnapWriter::new();
        self.checker.save(&mut w);
        b.section("checker", w.into_bytes());

        if let Some(p) = progress {
            let mut w = SnapWriter::new();
            p.save(&mut w);
            b.section("progress", w.into_bytes());
        }
        Ok(b.finish())
    }

    /// Restores a snapshot produced by [`MultiGpuSim::save_snapshot`]
    /// into this machine, which must have been freshly built from the
    /// same [`MultiGpuConfig`]. Returns the embedded [`KernelProgress`]
    /// for mid-kernel checkpoints.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on a damaged, truncated, or mismatched
    /// snapshot. On error the target may be partially overwritten:
    /// discard it and rebuild from config.
    pub fn restore_snapshot(
        &mut self,
        bytes: &[u8],
    ) -> Result<Option<KernelProgress>, SnapshotError> {
        let file = SnapshotFile::parse(bytes)?;

        let mut r = file.section("meta")?;
        let fingerprint: u64 = Snap::load(&mut r)?;
        r.expect_end("meta section")?;
        if fingerprint != self.config_fingerprint() {
            return Err(SnapshotError::Mismatch {
                what: "multi-GPU config fingerprint".into(),
            });
        }

        let mut r = file.section("sim")?;
        self.now = Snap::load(&mut r)?;
        self.epoch = Snap::load(&mut r)?;
        self.device_recoveries = Snap::load(&mut r)?;
        let device_faults: Vec<Option<BankFaults>> = Snap::load(&mut r)?;
        if device_faults.len() != self.device_faults.len() {
            return Err(SnapshotError::Mismatch {
                what: "device-crash scheduler count".into(),
            });
        }
        self.device_faults = device_faults;
        self.sanitizer.load_state(&mut r)?;
        self.steps = Snap::load(&mut r)?;
        r.expect_end("sim section")?;

        let mut r = file.section("devices")?;
        if r.usize()? != self.devices.len() {
            return Err(SnapshotError::Mismatch {
                what: "device count".into(),
            });
        }
        for dev in &mut self.devices {
            if r.usize()? != dev.sms.len() {
                return Err(SnapshotError::Mismatch {
                    what: "SM count".into(),
                });
            }
            for sm in &mut dev.sms {
                sm.load_state(&mut r)?;
            }
            if r.usize()? != dev.l2.len() {
                return Err(SnapshotError::Mismatch {
                    what: "device-L2 bank count".into(),
                });
            }
            for bank in &mut dev.l2 {
                bank.load_state(&mut r)?;
            }
        }
        r.expect_end("devices section")?;

        let mut r = file.section("nets")?;
        for dev in &mut self.devices {
            dev.req_net.load_state(&mut r)?;
            dev.resp_net.load_state(&mut r)?;
        }
        r.expect_end("nets section")?;

        let mut r = file.section("fabric")?;
        self.up_net.load_state(&mut r)?;
        self.down_net.load_state(&mut r)?;
        r.expect_end("fabric section")?;

        let mut r = file.section("home")?;
        self.home.load_state(&mut r)?;
        r.expect_end("home section")?;

        let mut r = file.section("checker")?;
        self.checker = Snap::load(&mut r)?;
        r.expect_end("checker section")?;

        if file.section_names().contains(&"progress") {
            let mut r = file.section("progress")?;
            let p = KernelProgress::load(&mut r)?;
            r.expect_end("progress section")?;
            Ok(Some(p))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
    use gtsc_types::{Addr, FabricConfig};

    fn sharing_kernel(n_ctas: usize) -> VecKernel {
        // Every CTA stores to its own line then reads lines owned by
        // other CTAs — true cross-device sharing through the fabric.
        let ctas = (0..n_ctas)
            .map(|c| {
                let own = Addr((c as u64) * 128);
                let other = Addr(((c as u64 + 1) % n_ctas as u64) * 128);
                vec![WarpProgram(vec![
                    WarpOp::store_coalesced(own, 32),
                    WarpOp::Fence,
                    WarpOp::load_coalesced(other, 32),
                    WarpOp::load_coalesced(own, 32),
                ])]
            })
            .collect();
        VecKernel::new("xshare", 1, ctas)
    }

    fn small(n: usize) -> MultiGpuConfig {
        let mut cfg = MultiGpuConfig::test_small(n);
        cfg.gpu.sanitize = true;
        cfg
    }

    #[test]
    fn cross_device_sharing_completes_coherently() {
        let mut sim = MultiGpuSim::new(small(2));
        let report = sim.run_kernel(&sharing_kernel(4)).expect("completes");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.stats.cycles.0 > 0);
        // Both devices did work and the home served fabric traffic.
        assert!(report.stats.l2.accesses > 0);
        assert!(sim.sanitizer().checked() > 0);
    }

    #[test]
    fn memory_image_is_deterministic_across_runs_and_topologies() {
        // Two identical 2-device runs agree exactly; a 1-device run
        // covers the same blocks (versions encode the minting SM, which
        // legitimately differs between topologies).
        let mut a = MultiGpuSim::new(small(2));
        a.run_kernel(&sharing_kernel(4)).expect("completes");
        let mut b = MultiGpuSim::new(small(2));
        b.run_kernel(&sharing_kernel(4)).expect("completes");
        assert_eq!(a.memory_image(), b.memory_image());
        let mut one = MultiGpuSim::new(small(1));
        one.run_kernel(&sharing_kernel(4)).expect("completes");
        assert_eq!(
            one.memory_image().keys().collect::<Vec<_>>(),
            a.memory_image().keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn fabric_loss_is_transparent_to_results() {
        let mut clean = MultiGpuSim::new(small(2));
        let r = clean.run_kernel(&sharing_kernel(6)).expect("completes");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        let mut cfg = small(2);
        cfg.fabric = FabricConfig::default().lossy(7, 100);
        let mut lossy = MultiGpuSim::new(cfg);
        let r = lossy.run_kernel(&sharing_kernel(6)).expect("completes");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(clean.memory_image(), lossy.memory_image());
        assert!(
            lossy.fault_stats().is_some_and(|s| s.dropped > 0),
            "faults must actually have fired"
        );
    }

    #[test]
    fn device_crash_recovers_behind_epoch_bump() {
        let mut clean = MultiGpuSim::new(small(2));
        clean.run_kernel(&sharing_kernel(6)).expect("completes");
        let mut cfg = small(2);
        cfg.fabric = FabricConfig::default().with_device_crashes(2, 2_000);
        let mut crashy = MultiGpuSim::new(cfg);
        let r = crashy.run_kernel(&sharing_kernel(6)).expect("completes");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(crashy.device_recoveries() > 0, "a crash must have fired");
        assert!(crashy.epoch() > 0, "crash recovery bumps the global epoch");
        assert_eq!(clean.memory_image(), crashy.memory_image());
    }

    #[test]
    fn partition_windows_are_survived() {
        let mut clean = MultiGpuSim::new(small(2));
        clean.run_kernel(&sharing_kernel(4)).expect("completes");
        let mut cfg = small(2);
        cfg.fabric = FabricConfig::default().with_partitions(2, 3_000, 1_500);
        let mut part = MultiGpuSim::new(cfg);
        let r = part.run_kernel(&sharing_kernel(4)).expect("completes");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(clean.memory_image(), part.memory_image());
    }

    #[test]
    fn snapshot_mid_kernel_resumes_identically() {
        let kernel = sharing_kernel(4);
        let cfg = small(2);
        let mut a = MultiGpuSim::new(cfg.clone());
        let mut pa = KernelProgress::new(&kernel);
        // Run a slice, checkpoint, keep running A to the end.
        assert!(a
            .advance_kernel(&kernel, &mut pa, 300)
            .expect("slice ok")
            .is_none());
        let snap = a.save_snapshot(Some(&pa)).expect("snapshot");
        let ra = a
            .advance_kernel(&kernel, &mut pa, 0)
            .expect("finishes")
            .expect("report");
        // Restore into a fresh machine and finish from the checkpoint.
        let mut b = MultiGpuSim::new(cfg);
        let mut pb = b
            .restore_snapshot(&snap)
            .expect("restore")
            .expect("mid-kernel progress");
        let rb = b
            .advance_kernel(&kernel, &mut pb, 0)
            .expect("finishes")
            .expect("report");
        assert_eq!(ra.stats.cycles, rb.stats.cycles);
        assert_eq!(a.memory_image(), b.memory_image());
        assert_eq!(
            ra.stats.l1.accesses, rb.stats.l1.accesses,
            "restored run must be cycle-identical"
        );
    }

    #[test]
    fn non_gtsc_protocol_is_rejected() {
        let mut cfg = small(2);
        cfg.gpu.protocol = gtsc_types::ProtocolKind::Tc;
        assert!(matches!(
            MultiGpuSim::try_build(cfg),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rollover_starved_grant_lease_is_rejected() {
        // A grant lease consuming the whole timestamp budget livelocks
        // in perpetual Section V-D resets; the build must refuse it.
        let mut cfg = small(2);
        cfg.gpu.ts_bits = 6;
        assert_eq!(
            cfg.fabric.grant_lease.0, 64,
            "default lease moved — retune this test"
        );
        assert!(matches!(
            MultiGpuSim::try_build(cfg.clone()),
            Err(SimError::InvalidConfig(_))
        ));
        cfg.fabric.grant_lease = gtsc_types::Lease(16);
        assert!(MultiGpuSim::try_build(cfg).is_ok());
    }

    /// The headline robustness soak: 100 seeded storms mixing fabric
    /// packet loss, link partitions, and whole-device crash/rejoin, each
    /// ending byte-identical to the fault-free run of the same kernel.
    /// Faults may cost cycles but can never change what memory says.
    #[test]
    fn hundred_seed_fault_soak_is_byte_identical_to_fault_free() {
        let kernel = sharing_kernel(4);
        let mut clean = MultiGpuSim::new(small(2));
        let r = clean.run_kernel(&kernel).expect("fault-free run completes");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        let truth = clean.memory_image();
        for seed in 0u64..100 {
            let mut cfg = small(2);
            cfg.fabric = match seed % 4 {
                0 => FabricConfig::default().lossy(seed, 80),
                1 => FabricConfig::default().with_partitions(2, 3_000, 1_500),
                2 => FabricConfig::default()
                    .lossy(seed, 60)
                    .with_device_crashes(2, 2_000),
                _ => FabricConfig::default()
                    .lossy(seed, 40)
                    .with_partitions(1, 2_000, 800)
                    .with_device_crashes(1, 1_500),
            };
            // Partition/crash schedules are drawn from the fault seed
            // even when the loss layer is off.
            cfg.fabric.faults.seed = seed;
            let mut sim = MultiGpuSim::new(cfg);
            let r = sim
                .run_kernel(&kernel)
                .unwrap_or_else(|e| panic!("seed {seed}: did not complete: {e}"));
            assert!(r.violations.is_empty(), "seed {seed}: {:?}", r.violations);
            assert_eq!(
                truth,
                sim.memory_image(),
                "seed {seed}: faults changed the memory image"
            );
        }
    }

    #[test]
    fn snapshot_restore_under_fabric_loss_matches_uninterrupted() {
        // Satellite of DESIGN.md §14: a mid-kernel checkpoint taken
        // while the fabric is dropping packets (retransmit state, parked
        // grants, home directory all live) restores to a run
        // indistinguishable from the uninterrupted one.
        let kernel = sharing_kernel(4);
        let mut cfg = small(2);
        cfg.fabric = FabricConfig::default().lossy(11, 80);
        let mut a = MultiGpuSim::new(cfg.clone());
        let mut pa = KernelProgress::new(&kernel);
        assert!(a
            .advance_kernel(&kernel, &mut pa, 500)
            .expect("slice ok")
            .is_none());
        let snap = a.save_snapshot(Some(&pa)).expect("snapshot");
        let ra = a
            .advance_kernel(&kernel, &mut pa, 0)
            .expect("finishes")
            .expect("report");
        let mut b = MultiGpuSim::new(cfg);
        let mut pb = b
            .restore_snapshot(&snap)
            .expect("restore")
            .expect("mid-kernel progress");
        let rb = b
            .advance_kernel(&kernel, &mut pb, 0)
            .expect("finishes")
            .expect("report");
        assert_eq!(ra.stats.cycles, rb.stats.cycles);
        assert_eq!(a.memory_image(), b.memory_image());
        assert_eq!(
            ra.stats.transport.retransmits, rb.stats.transport.retransmits,
            "restored run must replay the same fabric recovery"
        );
    }
}
