//! Protocol factory: builds the L1/L2 controller pair selected by
//! [`GpuConfig::protocol`](gtsc_types::GpuConfig).

use gtsc_baselines::{
    BypassL1, NonCoherentL1, PlainL2, PlainL2Params, TcL1, TcL1Params, TcL2, TcL2Params, TcMode,
};
use gtsc_core::{GtscL1, GtscL2, L1Params, L2Params};
use gtsc_protocol::{L1Controller, L2Controller};
use gtsc_types::{GpuConfig, ProtocolKind};

/// Builds the private-cache controller for SM `sm_index` under
/// `cfg.protocol`.
#[must_use]
pub fn build_l1(cfg: &GpuConfig, sm_index: usize) -> Box<dyn L1Controller> {
    match cfg.protocol {
        ProtocolKind::Gtsc => Box::new(GtscL1::new(L1Params {
            geometry: cfg.l1,
            n_warps: cfg.warps_per_sm,
            sm_index,
            mshr_entries: cfg.l1_mshr_entries,
            mshr_merges: cfg.l1_mshr_merges,
            combine: cfg.combine,
            visibility: cfg.visibility,
        })),
        ProtocolKind::Tc | ProtocolKind::TcWeak => Box::new(TcL1::new(TcL1Params {
            geometry: cfg.l1,
            n_warps: cfg.warps_per_sm,
            sm_index,
            mshr_entries: cfg.l1_mshr_entries,
            mshr_merges: cfg.l1_mshr_merges,
            mode: if cfg.protocol == ProtocolKind::Tc {
                TcMode::Strong
            } else {
                TcMode::Weak
            },
        })),
        ProtocolKind::NoL1 => Box::new(BypassL1::new(sm_index)),
        ProtocolKind::L1NoCoherence => Box::new(NonCoherentL1::new(
            cfg.l1,
            sm_index,
            cfg.l1_mshr_entries,
            cfg.l1_mshr_merges,
        )),
    }
}

/// Builds one shared-cache bank controller under `cfg.protocol`.
#[must_use]
pub fn build_l2(cfg: &GpuConfig) -> Box<dyn L2Controller> {
    match cfg.protocol {
        ProtocolKind::Gtsc => Box::new(GtscL2::new(L2Params {
            geometry: cfg.l2.with_set_stride(cfg.l2_banks as u64),
            lease: cfg.lease,
            ts_bits: cfg.ts_bits,
            latency: cfg.l2_latency,
            ports: 2,
            inclusion: cfg.inclusion,
            n_sms: cfg.n_sms,
            mshr_entries: cfg.l2_mshr_entries,
            mshr_merges: 256,
            adaptive_lease: cfg.adaptive_lease,
        })),
        ProtocolKind::Tc | ProtocolKind::TcWeak => Box::new(TcL2::new(TcL2Params {
            geometry: cfg.l2.with_set_stride(cfg.l2_banks as u64),
            lease_cycles: cfg.tc_lease_cycles,
            latency: cfg.l2_latency,
            ports: 2,
            mshr_entries: cfg.l2_mshr_entries,
            mshr_merges: 256,
            mode: if cfg.protocol == ProtocolKind::Tc {
                TcMode::Strong
            } else {
                TcMode::Weak
            },
        })),
        ProtocolKind::NoL1 | ProtocolKind::L1NoCoherence => Box::new(PlainL2::new(PlainL2Params {
            geometry: cfg.l2.with_set_stride(cfg.l2_banks as u64),
            latency: cfg.l2_latency,
            ports: 2,
            mshr_entries: cfg.l2_mshr_entries,
            mshr_merges: 256,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::ConsistencyModel;

    #[test]
    fn every_protocol_builds() {
        for p in [
            ProtocolKind::Gtsc,
            ProtocolKind::Tc,
            ProtocolKind::TcWeak,
            ProtocolKind::NoL1,
            ProtocolKind::L1NoCoherence,
        ] {
            let cfg = GpuConfig::test_small()
                .with_protocol(p)
                .with_consistency(ConsistencyModel::Rc);
            let l1 = build_l1(&cfg, 0);
            let l2 = build_l2(&cfg);
            assert!(l1.is_idle());
            assert!(l2.is_idle());
        }
    }
}
