//! Hand-rolled versioned binary snapshot serialization.
//!
//! The checkpoint/restore layer (DESIGN.md §14) serializes the whole
//! simulator state to a byte image with no external dependencies:
//!
//! * a fixed little-endian encoding via [`SnapWriter`] / [`SnapReader`];
//! * the [`Snap`] trait, implemented by every stateful component
//!   (collections of hash-map kind are written in sorted key order so
//!   identical logical state always produces identical bytes);
//! * a sectioned container ([`SnapshotBuilder`] / [`SnapshotFile`]):
//!   magic + format version + one length- and CRC32-framed section per
//!   subsystem, so truncation and bit flips are *detected* — every
//!   failure surfaces as a [`SnapshotError`], never a panic — and a
//!   loader can fall back to the previous good checkpoint.
//!
//! Encoding rules: all integers little-endian fixed width; `usize` as
//! `u64`; `bool` as one byte (`0`/`1`, anything else is malformed);
//! `Option<T>` as a presence byte then the payload; sequences as a
//! `u64` length then the elements.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Leading magic of every snapshot produced by [`SnapshotBuilder`].
pub const SNAP_MAGIC: [u8; 8] = *b"GTSCSNAP";
/// Snapshot container format version. Bump on any incompatible change
/// to the section framing *or* to any component's [`Snap`] encoding.
pub const SNAP_VERSION: u32 = 1;

/// Why a snapshot could not be written, parsed, or applied.
///
/// Corruption (truncation, bit flips, wrong magic) is always reported
/// through this type — the snapshot layer never panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the value being decoded.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The leading magic bytes are not [`SNAP_MAGIC`].
    BadMagic,
    /// The container was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A section's CRC32 does not match its payload (bit flip or
    /// torn write).
    Corrupt {
        /// Name of the damaged section.
        section: String,
    },
    /// The bytes decoded but the value is impossible (bad enum tag,
    /// non-0/1 bool, length overflow).
    Malformed {
        /// What was being decoded.
        context: String,
    },
    /// The container parsed but a required section is absent.
    MissingSection {
        /// Name of the absent section.
        name: String,
    },
    /// The snapshot does not belong to the state being restored
    /// (different config, kernel, or component geometry).
    Mismatch {
        /// Human-readable description of the disagreement.
        what: String,
    },
    /// The component does not implement checkpointing (e.g. a baseline
    /// cache controller outside the G-TSC protocol).
    Unsupported {
        /// The operation that is not available.
        what: &'static str,
    },
    /// An I/O error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while decoding {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(f, "snapshot format version {found} is not {SNAP_VERSION}")
            }
            SnapshotError::Corrupt { section } => {
                write!(f, "snapshot section '{section}' failed its CRC32 check")
            }
            SnapshotError::Malformed { context } => {
                write!(f, "snapshot contains a malformed {context}")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "snapshot is missing required section '{name}'")
            }
            SnapshotError::Mismatch { what } => {
                write!(f, "snapshot does not match the restore target: {what}")
            }
            SnapshotError::Unsupported { what } => {
                write!(f, "snapshotting is not supported: {what}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const fn crc32_table() -> [u32; 256] {
    // IEEE 802.3 reflected polynomial, the one used by zip/png/ethernet.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`, as framed into every snapshot section.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Byte-stream writer for the fixed snapshot encoding.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.bytes(v.as_bytes());
    }
}

/// Byte-stream reader for the fixed snapshot encoding. Every accessor
/// returns [`SnapshotError::Truncated`] instead of panicking when the
/// input runs out.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Truncated { context })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated { context })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input;
    /// [`SnapshotError::Malformed`] if the value does not fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed {
            context: "usize out of range".to_owned(),
        })
    }

    /// Reads a `bool` (one byte, `0` or `1`).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input;
    /// [`SnapshotError::Malformed`] on any byte other than `0`/`1`.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed {
                context: format!("bool byte {other}"),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input;
    /// [`SnapshotError::Malformed`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.usize()?;
        let bytes = self.take(n, "str")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            context: "utf-8 string".to_owned(),
        })
    }

    /// Reads a sequence length and sanity-checks it against the bytes
    /// actually remaining (each element needs at least `min_elem_bytes`),
    /// so a corrupted length can never trigger a huge allocation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if the announced length cannot fit
    /// in the remaining input.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        let need = n.checked_mul(min_elem_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(n),
            _ => Err(SnapshotError::Malformed {
                context: format!("sequence length {n} exceeds remaining input"),
            }),
        }
    }

    /// Asserts that the reader consumed its entire input.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if bytes remain.
    pub fn expect_end(&self, context: &'static str) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed {
                context: format!("{} trailing bytes after {context}", self.remaining()),
            })
        }
    }
}

/// A value with a deterministic binary encoding. Saving the same logical
/// state twice must produce identical bytes (unordered containers are
/// written in sorted key order).
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut SnapWriter);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on truncated or malformed input.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! snap_uint {
    ($($ty:ident),*) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$ty(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                r.$ty()
            }
        }
    )*};
}

snap_uint!(u8, u16, u32, u64, usize, bool);

impl Snap for () {
    fn save(&self, _w: &mut SnapWriter) {}
    fn load(_r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl Snap for i64 {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(r.u64()? as i64)
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        r.str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            other => Err(SnapshotError::Malformed {
                context: format!("Option tag {other}"),
            }),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len(1)?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap + Default + Copy, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut out = [T::default(); N];
        for v in &mut out {
            *v = T::load(r)?;
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// Hash containers are written in sorted key order: the iteration order
// of a `HashMap` is randomized per process, and a snapshot must encode
// identical logical state as identical bytes.
impl<K: Snap + Ord + Hash + Eq, V: Snap, S: BuildHasher + Default> Snap for HashMap<K, V, S> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (k, v) in entries {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len(2)?;
        let mut out = HashMap::with_capacity_and_hasher(n, S::default());
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord + Hash + Eq, S: BuildHasher + Default> Snap for HashSet<T, S> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        for v in entries {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len(1)?;
        let mut out = HashSet::with_capacity_and_hasher(n, S::default());
        for _ in 0..n {
            out.insert(T::load(r)?);
        }
        Ok(out)
    }
}

macro_rules! snap_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Snap),+> Snap for ($($name,)+) {
            fn save(&self, w: &mut SnapWriter) {
                $(self.$idx.save(w);)+
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                Ok(($($name::load(r)?,)+))
            }
        }
    };
}

snap_tuple!(A: 0);
snap_tuple!(A: 0, B: 1);
snap_tuple!(A: 0, B: 1, C: 2);
snap_tuple!(A: 0, B: 1, C: 2, D: 3);
snap_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

macro_rules! snap_newtype_u64 {
    ($($ty:path),* $(,)?) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.u64(self.0);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                Ok(Self(r.u64()?))
            }
        }
    )*};
}

snap_newtype_u64!(
    crate::Cycle,
    crate::Timestamp,
    crate::Lease,
    crate::Addr,
    crate::BlockAddr,
    crate::Version,
    crate::SpanId,
);

macro_rules! snap_newtype_small {
    ($($ty:path => $inner:ident),* $(,)?) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$inner(self.0);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                Ok(Self(r.$inner()?))
            }
        }
    )*};
}

snap_newtype_small!(
    crate::SmId => u16,
    crate::WarpId => u16,
    crate::BankId => u16,
    crate::LaneId => u8,
    crate::CtaId => u32,
    crate::KernelId => u32,
);

/// Implements [`Snap`] for a struct by saving and loading the listed
/// fields in declaration order. Usable from any crate for any struct
/// whose listed fields are all `Snap` and visible at the call site.
///
/// ```
/// struct Counters {
///     hits: u64,
///     misses: u64,
/// }
/// gtsc_types::snap_fields!(Counters { hits, misses });
/// ```
#[macro_export]
macro_rules! snap_fields {
    ($ty:ty { $($f:ident),+ $(,)? }) => {
        impl $crate::snap::Snap for $ty {
            fn save(&self, w: &mut $crate::snap::SnapWriter) {
                $($crate::snap::Snap::save(&self.$f, w);)+
            }
            fn load(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> ::std::result::Result<Self, $crate::snap::SnapshotError> {
                ::std::result::Result::Ok(Self {
                    $($f: $crate::snap::Snap::load(r)?,)+
                })
            }
        }
    };
}

/// Assembles a sectioned snapshot: magic, format version, then each
/// section as `name | payload length | payload CRC32 | payload`.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Appends a named section with the given payload.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push((name.to_owned(), payload));
    }

    /// Encodes the container.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.bytes(&SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        w.u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.str(name);
            w.usize(payload.len());
            w.u32(crc32(payload));
            w.bytes(payload);
        }
        w.into_bytes()
    }
}

/// A parsed snapshot container: section names mapped to their verified
/// payloads. Parsing validates the magic, the format version, and every
/// section's length framing and CRC32 up front, so corruption is caught
/// before any component starts decoding.
#[derive(Debug)]
pub struct SnapshotFile<'a> {
    sections: Vec<(String, &'a [u8])>,
}

impl<'a> SnapshotFile<'a> {
    /// Parses and verifies `bytes`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::BadVersion`],
    /// [`SnapshotError::Truncated`], or [`SnapshotError::Corrupt`] on a
    /// damaged container.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapReader::new(bytes);
        let magic = r.take(SNAP_MAGIC.len(), "magic")?;
        if magic != SNAP_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let n_sections = r.u32()?;
        let mut sections = Vec::with_capacity(n_sections.min(1024) as usize);
        for _ in 0..n_sections {
            let name = r.str()?;
            let len = r.usize()?;
            let want_crc = r.u32()?;
            let payload = r.take(len, "section payload")?;
            if crc32(payload) != want_crc {
                return Err(SnapshotError::Corrupt { section: name });
            }
            sections.push((name, payload));
        }
        r.expect_end("snapshot container")?;
        Ok(SnapshotFile { sections })
    }

    /// A reader over the named section's verified payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] if absent.
    pub fn section(&self, name: &str) -> Result<SnapReader<'a>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, payload)| SnapReader::new(payload))
            .ok_or_else(|| SnapshotError::MissingSection {
                name: name.to_owned(),
            })
    }

    /// The section names, in container order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // "123456789" → 0xCBF43926 is the canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitive_round_trips() {
        let mut w = SnapWriter::new();
        42u8.save(&mut w);
        0xBEEFu16.save(&mut w);
        0xDEAD_BEEFu32.save(&mut w);
        u64::MAX.save(&mut w);
        true.save(&mut w);
        (-5i64).save(&mut w);
        "héllo".to_owned().save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(u8::load(&mut r), Ok(42));
        assert_eq!(u16::load(&mut r), Ok(0xBEEF));
        assert_eq!(u32::load(&mut r), Ok(0xDEAD_BEEF));
        assert_eq!(u64::load(&mut r), Ok(u64::MAX));
        assert_eq!(bool::load(&mut r), Ok(true));
        assert_eq!(i64::load(&mut r), Ok(-5));
        assert_eq!(String::load(&mut r), Ok("héllo".to_owned()));
        assert!(r.expect_end("test").is_ok());
    }

    #[test]
    fn container_round_trips() {
        let mut v = Vec::new();
        for x in [3u64, 1, 2] {
            v.push(x);
        }
        let dq: VecDeque<u32> = [7u32, 8, 9].into_iter().collect();
        let mut bt = BTreeMap::new();
        bt.insert(crate::BlockAddr(9), crate::Version(1));
        bt.insert(crate::BlockAddr(2), crate::Version(5));
        let opt: Option<(u64, bool)> = Some((11, false));
        let arr: [u64; 4] = [5, 6, 7, 8];

        let mut w = SnapWriter::new();
        v.save(&mut w);
        dq.save(&mut w);
        bt.save(&mut w);
        opt.save(&mut w);
        arr.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::load(&mut r), Ok(v));
        assert_eq!(VecDeque::<u32>::load(&mut r), Ok(dq));
        assert_eq!(
            BTreeMap::<crate::BlockAddr, crate::Version>::load(&mut r),
            Ok(bt)
        );
        assert_eq!(Option::<(u64, bool)>::load(&mut r), Ok(opt));
        assert_eq!(<[u64; 4]>::load(&mut r), Ok(arr));
    }

    #[test]
    fn hashmap_encoding_is_key_sorted_and_stable() {
        let mut a: HashMap<u64, u64> = HashMap::new();
        let mut b: HashMap<u64, u64> = HashMap::new();
        // Insert in different orders; encodings must be identical.
        for k in 0..64u64 {
            a.insert(k, k * 2);
        }
        for k in (0..64u64).rev() {
            b.insert(k, k * 2);
        }
        let mut wa = SnapWriter::new();
        let mut wb = SnapWriter::new();
        a.save(&mut wa);
        b.save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());

        let s: HashSet<u32> = [9u32, 1, 5].into_iter().collect();
        let mut w = SnapWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = HashSet::<u32>::load(&mut r).expect("loads");
        assert_eq!(back, s);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        12345u64.save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(matches!(
                u64::load(&mut r),
                Err(SnapshotError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn hostile_lengths_cannot_allocate() {
        // A sequence claiming u64::MAX elements with 8 bytes of input.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Vec::<u64>::load(&mut r),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn bad_bool_and_option_tags_are_malformed() {
        let bytes = [7u8];
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            bool::load(&mut r),
            Err(SnapshotError::Malformed { .. })
        ));
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Option::<u8>::load(&mut r),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn snapshot_file_detects_all_damage_classes() {
        let mut b = SnapshotBuilder::new();
        b.section("alpha", vec![1, 2, 3, 4]);
        b.section("beta", vec![9, 9]);
        let good = b.finish();

        let parsed = SnapshotFile::parse(&good).expect("good parses");
        assert_eq!(parsed.section_names(), vec!["alpha", "beta"]);
        let mut r = parsed.section("alpha").expect("alpha present");
        assert_eq!(r.take(4, "alpha"), Ok(&[1u8, 2, 3, 4][..]));
        assert!(matches!(
            parsed.section("gamma"),
            Err(SnapshotError::MissingSection { .. })
        ));

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            SnapshotFile::parse(&bad),
            Err(SnapshotError::BadMagic)
        ));

        // Bad version.
        let mut bad = good.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            SnapshotFile::parse(&bad),
            Err(SnapshotError::BadVersion { .. })
        ));

        // Every possible truncation is detected.
        for cut in 0..good.len() {
            assert!(SnapshotFile::parse(&good[..cut]).is_err(), "cut at {cut}");
        }

        // Every possible single-bit flip in a payload is detected (the
        // last 2 bytes are beta's payload).
        let payload_start = good.len() - 2;
        for byte in payload_start..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(matches!(
                    SnapshotFile::parse(&bad),
                    Err(SnapshotError::Corrupt { section }) if section == "beta"
                ));
            }
        }
    }

    #[test]
    fn newtype_round_trips() {
        let mut w = SnapWriter::new();
        crate::Cycle(7).save(&mut w);
        crate::Timestamp(9).save(&mut w);
        crate::SmId(3).save(&mut w);
        crate::CtaId(12).save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(crate::Cycle::load(&mut r), Ok(crate::Cycle(7)));
        assert_eq!(crate::Timestamp::load(&mut r), Ok(crate::Timestamp(9)));
        assert_eq!(crate::SmId::load(&mut r), Ok(crate::SmId(3)));
        assert_eq!(crate::CtaId::load(&mut r), Ok(crate::CtaId(12)));
    }
}
