//! Simulation configuration.
//!
//! [`GpuConfig`] gathers every knob of the modelled GPU: core counts, cache
//! geometries, protocol selection, consistency model, NoC and DRAM timing.
//! [`GpuConfig::paper_default`] reproduces the evaluation platform of
//! Section VI-A (16 SMs, 48 warps/SM, 16 KiB L1, 8 × 128 KiB L2 banks).

use crate::addr::CacheGeometry;
use crate::time::Lease;

/// Which coherence mechanism the GPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// G-TSC: timestamp-ordering coherence (the paper's contribution).
    Gtsc,
    /// Temporal Coherence, strong variant (write atomicity preserved by
    /// stalling writes until all leases expire).
    Tc,
    /// TC-Weak: writes complete immediately; fences stall on per-warp
    /// Global Write Completion Times.
    TcWeak,
    /// Coherent baseline with the private L1 disabled: every global access
    /// goes to the shared L2 ("BL" in the paper).
    NoL1,
    /// Non-coherent private L1 ("Baseline W/L1"); only sound for workloads
    /// that do not require coherence.
    L1NoCoherence,
}

impl ProtocolKind {
    /// Short label used in experiment output, matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Gtsc => "G-TSC",
            ProtocolKind::Tc => "TC",
            ProtocolKind::TcWeak => "TC-Weak",
            ProtocolKind::NoL1 => "BL",
            ProtocolKind::L1NoCoherence => "BL-W/L1",
        }
    }
}

/// Memory consistency model enforced by the SM issue logic (Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyModel {
    /// Sequential consistency: at most one outstanding memory operation per
    /// warp, issued in program order.
    Sc,
    /// Release consistency: multiple outstanding operations, reordering
    /// allowed, ordering only at explicit fences.
    Rc,
}

impl ConsistencyModel {
    /// Short label ("SC"/"RC") used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ConsistencyModel::Sc => "SC",
            ConsistencyModel::Rc => "RC",
        }
    }
}

/// Warp scheduling policy of the SM issue stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarpScheduler {
    /// Loose round-robin (fair interleaving of ready warps).
    RoundRobin,
    /// Greedy-then-oldest, GPGPU-Sim's default: keep issuing from the
    /// current warp until it stalls, then fall back to the oldest ready
    /// warp. Improves intra-warp locality in the L1.
    Gto,
}

/// How an L1 handles replicated read requests from different warps to the
/// same missing block (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombinePolicy {
    /// Keep later requests in the MSHR; send renewals if the returned lease
    /// does not cover their `warp_ts` (the paper's choice).
    MergeInMshr,
    /// Forward every request to L2, trading NoC traffic for latency.
    ForwardAll,
}

/// How an L1 keeps an updated block inaccessible until the store is
/// globally performed (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisibilityPolicy {
    /// Option 1: block all accesses to the line until the write ack arrives
    /// (the paper's choice — negligible overhead, no extra storage).
    BlockLine,
    /// Option 2: keep the old copy readable alongside the pending new one;
    /// models the extra hardware buffer.
    DualCopy,
}

/// Whether L2 must contain every block cached in some L1 (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InclusionPolicy {
    /// GPUs are normally non-inclusive; G-TSC supports this via `mem_ts`.
    NonInclusive,
    /// TC requires inclusion: L2 victims with live L1 leases stall
    /// replacement.
    Inclusive,
}

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocTopology {
    /// Full crossbar: every packet pays the same pipeline latency.
    Crossbar,
    /// Unidirectional ring around all endpoints (SM ports first, then L2
    /// ports): a packet additionally pays `hop_latency` per hop from its
    /// source ring stop to its destination ring stop. Cheaper to build,
    /// distance-dependent — lets NoC-sensitivity studies vary topology
    /// without touching the protocols.
    Ring {
        /// Cycles per ring hop.
        hop_latency: u64,
    },
}

/// Interconnect parameters (SM ⇄ L2 network).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Topology (crossbar by default).
    pub topology: NocTopology,
    /// Zero-load latency of a packet, in cycles, each direction.
    pub latency: u64,
    /// Flit payload size in bytes (packets are split into flits).
    pub flit_bytes: usize,
    /// Flits per cycle each port can inject/eject.
    pub flits_per_cycle: usize,
    /// Size of a control-only packet header, in bytes.
    pub control_bytes: usize,
}

impl crate::snap::Snap for NocTopology {
    fn save(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            NocTopology::Crossbar => w.u8(0),
            NocTopology::Ring { hop_latency } => {
                w.u8(1);
                w.u64(*hop_latency);
            }
        }
    }
    fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        match r.u8()? {
            0 => Ok(NocTopology::Crossbar),
            1 => Ok(NocTopology::Ring {
                hop_latency: r.u64()?,
            }),
            t => Err(crate::snap::SnapshotError::Malformed {
                context: format!("NocTopology tag {t}"),
            }),
        }
    }
}

// The fabric config embeds link and transport parameters, so both must
// round-trip through the snapshot codec.
crate::snap_fields!(NocConfig {
    topology,
    latency,
    flit_bytes,
    flits_per_cycle,
    control_bytes,
});

impl Default for NocConfig {
    fn default() -> Self {
        // 32-byte flits at 4 flits/cycle per port ≈ 128 GB/s per port at
        // 1 GHz — in line with the Fermi-class crossbar GPGPU-Sim models.
        NocConfig {
            topology: NocTopology::Crossbar,
            latency: 20,
            flit_bytes: 32,
            flits_per_cycle: 4,
            control_bytes: 8,
        }
    }
}

/// DRAM row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Keep the row open after an access (exploits row locality; pays the
    /// full activate penalty on a conflict). GPGPU-Sim's default.
    Open,
    /// Precharge after every access: every access pays a fixed
    /// activate-and-access latency between hit and miss cost, but row
    /// conflicts never stack.
    Closed,
}

/// DRAM timing parameters (per memory partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per partition.
    pub banks: usize,
    /// Row-buffer hit latency (cycles).
    pub row_hit: u64,
    /// Row-buffer miss (activate + access) latency.
    pub row_miss: u64,
    /// Number of consecutive blocks mapping to one DRAM row.
    pub blocks_per_row: u64,
    /// Maximum requests queued per partition before back-pressure.
    pub queue_depth: usize,
    /// Minimum cycles between data bursts on the partition's pins
    /// (bandwidth model).
    pub burst_gap: u64,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_hit: 100,
            row_miss: 200,
            blocks_per_row: 16,
            queue_depth: 32,
            burst_gap: 4,
            page_policy: PagePolicy::Open,
        }
    }
}

/// Seeded fault-injection plan (robustness testing, not part of the
/// paper's evaluation platform).
///
/// The classic perturbations are *delays or duplications*: G-TSC's
/// correctness argument (Section III) assumes eventual delivery, and
/// those injectors honour that so a coherent protocol must stay
/// violation-free under any seed with the raw NoC alone. The *loss*
/// faults — packet drop, payload corruption, and L2-bank crash — break
/// that assumption on purpose: they are only survivable with the
/// reliable-transport layer (`gtsc_noc::ReliableNet`), which the
/// simulator enables automatically whenever a loss fault is configured.
/// Probabilities are in permille (0–1000) so the struct stays
/// `Copy + Eq`. The default is fully inert; [`FaultConfig::chaos`] is
/// the delay-only preset and [`FaultConfig::lossy`] layers drops and
/// corruption on top. Every random decision derives from `seed` alone,
/// so a given `(config, kernel, seed)` triple replays byte-for-byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Master seed; every injector stream is derived from it.
    pub seed: u64,
    /// Permille chance a NoC packet receives extra latency jitter.
    pub noc_jitter_permille: u16,
    /// Maximum extra cycles of NoC jitter (uniform in `1..=max`).
    pub noc_jitter_max: u64,
    /// Permille chance a NoC packet is held back a full reorder window,
    /// letting younger packets from the same source overtake it.
    pub noc_reorder_permille: u16,
    /// Extra cycles a reordered packet is held back.
    pub noc_reorder_window: u64,
    /// Permille chance a delivered NoC packet is delivered *again* later
    /// (exercises idempotence of the receive paths).
    pub noc_duplicate_permille: u16,
    /// Cycles after the original at which the duplicate arrives.
    pub noc_duplicate_lag: u64,
    /// Permille chance a DRAM request takes extra service latency.
    pub dram_jitter_permille: u16,
    /// Maximum extra DRAM service cycles (uniform in `1..=max`).
    pub dram_jitter_max: u64,
    /// When nonzero, caps `GpuConfig::ts_bits` at this width, shrinking
    /// the timestamp epoch budget to force frequent Section V-D rollover
    /// storms. `0` leaves `ts_bits` untouched.
    pub ts_bits_cap: u32,
    /// Permille chance a NoC packet is *dropped* at injection (loss
    /// fault: requires the reliable-transport layer for liveness).
    pub noc_drop_permille: u16,
    /// Permille chance a NoC packet's payload is *corrupted* in flight
    /// (the header survives, so the receiver can NACK the flow).
    pub noc_corrupt_permille: u16,
    /// Number of L2-bank crash/recovery events injected over the run
    /// (each resets one bank's tag array and transport state mid-run).
    pub l2_crash_count: u16,
    /// Cycle window `[1, window]` within which the bank crashes are
    /// scheduled (uniformly, from the seed). `0` disables crashes even
    /// when `l2_crash_count` is nonzero.
    pub l2_crash_window: u64,
}

// Fault injectors embed their `FaultConfig`, so checkpointing an armed
// injector (DESIGN.md §14) needs the config itself to round-trip.
crate::snap_fields!(FaultConfig {
    seed,
    noc_jitter_permille,
    noc_jitter_max,
    noc_reorder_permille,
    noc_reorder_window,
    noc_duplicate_permille,
    noc_duplicate_lag,
    dram_jitter_permille,
    dram_jitter_max,
    ts_bits_cap,
    noc_drop_permille,
    noc_corrupt_permille,
    l2_crash_count,
    l2_crash_window,
});

impl FaultConfig {
    /// The all-faults-on preset used by the fault-sweep tests: moderate
    /// NoC jitter, bounded reordering, duplicate delivery, DRAM service
    /// jitter, and 8-bit timestamps (rollover storms).
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            noc_jitter_permille: 300,
            noc_jitter_max: 40,
            noc_reorder_permille: 150,
            noc_reorder_window: 100,
            noc_duplicate_permille: 100,
            noc_duplicate_lag: 25,
            dram_jitter_permille: 250,
            dram_jitter_max: 300,
            ts_bits_cap: 8,
            ..FaultConfig::default()
        }
    }

    /// The loss preset: the full [`FaultConfig::chaos`] storm *plus*
    /// packet drops at `drop_permille` and payload corruption at half
    /// that rate. Any nonzero drop rate makes the simulator switch the
    /// NoC to reliable transport (ack/retransmit), so these runs must
    /// still complete with zero violations.
    #[must_use]
    pub fn lossy(seed: u64, drop_permille: u16) -> Self {
        FaultConfig {
            noc_drop_permille: drop_permille,
            noc_corrupt_permille: drop_permille / 2,
            ..FaultConfig::chaos(seed)
        }
    }

    /// Returns the config with `count` L2-bank crash/recovery events
    /// scheduled uniformly in cycles `[1, window]`.
    #[must_use]
    pub fn with_bank_crashes(mut self, count: u16, window: u64) -> Self {
        self.l2_crash_count = count;
        self.l2_crash_window = window;
        self
    }

    /// Whether any perturbation is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.noc_jitter_permille > 0
            || self.noc_reorder_permille > 0
            || self.noc_duplicate_permille > 0
            || self.dram_jitter_permille > 0
            || self.ts_bits_cap > 0
            || self.lossy_active()
    }

    /// Whether any *loss* fault (drop, corruption, bank crash) is
    /// enabled — exactly the condition under which the simulator runs
    /// the NoC through the reliable-transport layer.
    #[must_use]
    pub fn lossy_active(&self) -> bool {
        self.noc_drop_permille > 0
            || self.noc_corrupt_permille > 0
            || (self.l2_crash_count > 0 && self.l2_crash_window > 0)
    }
}

/// Parameters of the reliable-transport layer (`gtsc_noc::ReliableNet`):
/// retransmit timing, backoff, NACK pacing, and the end-to-end L1 retry
/// timeout. Only consulted when a loss fault is active; see DESIGN.md
/// §13 for how the constants were sized against `ts_bits` and the NoC
/// round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransportConfig {
    /// Base retransmit timeout in cycles (before backoff). Must exceed
    /// one NoC round-trip including injection serialization; the default
    /// is ~6× the default 20-cycle pipeline latency each way.
    pub retransmit_timeout: u64,
    /// Exponential-backoff cap: the timeout doubles per retry up to
    /// `base << max_backoff_exp`.
    pub max_backoff_exp: u32,
    /// Minimum cycles between NACKs for one flow (paces NACK storms
    /// when a gap persists).
    pub nack_min_gap: u64,
    /// End-to-end L1 retry timeout: an un-answered read or store is
    /// re-issued after this many cycles. Covers losses the transport
    /// cannot see (a bank crash wiping an already-delivered request);
    /// must comfortably exceed the worst-case transport backoff.
    pub retry_timeout: u64,
}

crate::snap_fields!(TransportConfig {
    retransmit_timeout,
    max_backoff_exp,
    nack_min_gap,
    retry_timeout,
});

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            retransmit_timeout: 256,
            max_backoff_exp: 6,
            nack_min_gap: 64,
            retry_timeout: 4096,
        }
    }
}

/// What the protocol event-tracing subsystem records.
///
/// The hot-path hooks compile to a single branch on this enum when
/// tracing is [`TraceMode::Off`], so the default costs nothing on the
/// protocol fast paths (verified by the `trace_overhead` benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TraceMode {
    /// No events recorded (the default).
    #[default]
    Off,
    /// Bounded per-component ring buffers only: the last
    /// [`TraceConfig::flight_capacity`] events per SM / L2 bank / network
    /// / DRAM partition are retained for post-mortems (stall diagnoses,
    /// checker violation reports).
    Flight,
    /// Flight recorder *plus* an unbounded in-order event log, suitable
    /// for Chrome-trace export. Memory grows with run length — use on
    /// small kernels or with filters.
    Full,
}

/// Configuration of the protocol event tracer (see the `gtsc-trace`
/// crate). Inert by default; probabilistically free when off.
///
/// Filters compose conjunctively: an event is kept only if its class bit
/// is set in `class_mask`, its source SM passes `sm_filter` (events from
/// non-SM scopes always pass), and its block — when it has one — falls in
/// `block_range`.
///
/// # Examples
///
/// ```
/// use gtsc_types::TraceConfig;
/// assert!(!TraceConfig::default().is_enabled());
/// let t = TraceConfig::flight().with_sm(3).with_blocks(0, 64);
/// assert!(t.is_enabled());
/// assert_eq!(t.sm_filter, Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceConfig {
    /// What to record.
    pub mode: TraceMode,
    /// Ring-buffer capacity per traced component (flight recorder).
    pub flight_capacity: usize,
    /// Snapshot [`crate::SimStats`] deltas every this many cycles into a
    /// time-series; `0` disables the interval sampler.
    pub sample_interval: u64,
    /// Bitmask over `gtsc_trace::EventClass` bits; `u16::MAX` keeps all.
    pub class_mask: u16,
    /// When `Some(i)`, keep only events from SM `i` (and from non-SM
    /// scopes: L2 banks, NoC, DRAM).
    pub sm_filter: Option<u16>,
    /// When `Some((lo, hi))`, keep only events touching a block address
    /// in `lo..=hi` (events without a block always pass).
    pub block_range: Option<(u64, u64)>,
    /// Causal-span sampling rate: sample roughly 1-in-`span_rate`
    /// memory accesses (seeded hash, deterministic per seed); `0`
    /// disables spans entirely (the default, zero-cost fast path).
    /// Spans are orthogonal to `mode` — they work even with
    /// `TraceMode::Off`.
    pub span_rate: u64,
    /// Seed mixed into span-sampling decisions so different seeds pick
    /// different (but reproducible) access subsets.
    pub span_seed: u64,
    /// Retain at most this many completed spans (deterministic
    /// first-opened-first-retained; later spans are counted but not
    /// stored). Bounds observatory memory on long runs.
    pub span_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            flight_capacity: 64,
            sample_interval: 0,
            class_mask: u16::MAX,
            sm_filter: None,
            block_range: None,
            span_rate: 0,
            span_seed: 0,
            span_cap: 4096,
        }
    }
}

impl TraceConfig {
    /// Flight recorder only: bounded memory, post-mortem tails.
    #[must_use]
    pub fn flight() -> Self {
        TraceConfig {
            mode: TraceMode::Flight,
            ..TraceConfig::default()
        }
    }

    /// Full event log (plus flight recorder) with a default 1024-cycle
    /// stats sampling interval — what the exporters consume.
    #[must_use]
    pub fn full() -> Self {
        TraceConfig {
            mode: TraceMode::Full,
            sample_interval: 1024,
            ..TraceConfig::default()
        }
    }

    /// Whether any recording is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// Returns the config with the stats-sampling interval set.
    #[must_use]
    pub fn with_interval(mut self, cycles: u64) -> Self {
        self.sample_interval = cycles;
        self
    }

    /// Returns the config keeping only the event classes in `mask`.
    #[must_use]
    pub fn with_class_mask(mut self, mask: u16) -> Self {
        self.class_mask = mask;
        self
    }

    /// Returns the config keeping only events from SM `sm`.
    #[must_use]
    pub fn with_sm(mut self, sm: u16) -> Self {
        self.sm_filter = Some(sm);
        self
    }

    /// Returns the config keeping only events on blocks in `lo..=hi`.
    #[must_use]
    pub fn with_blocks(mut self, lo: u64, hi: u64) -> Self {
        self.block_range = Some((lo, hi));
        self
    }

    /// Returns the config with the per-component ring capacity set.
    #[must_use]
    pub fn with_flight_capacity(mut self, events: usize) -> Self {
        self.flight_capacity = events;
        self
    }

    /// Returns the config with causal-span sampling enabled: roughly
    /// 1-in-`rate` memory accesses (deterministic per `seed`) carry a
    /// [`crate::SpanId`] end-to-end. `rate = 0` disables spans.
    #[must_use]
    pub fn with_spans(mut self, rate: u64, seed: u64) -> Self {
        self.span_rate = rate;
        self.span_seed = seed;
        self
    }

    /// Returns the config with the retained-span cap set.
    #[must_use]
    pub fn with_span_cap(mut self, cap: usize) -> Self {
        self.span_cap = cap;
        self
    }

    /// Whether causal-span sampling is on.
    #[must_use]
    pub fn spans_enabled(&self) -> bool {
        self.span_rate > 0
    }
}

/// Inter-GPU fabric parameters (device L2 ⇄ home node network).
///
/// The fabric reuses the on-die NoC machinery (`gtsc_noc::ReliableNet`)
/// but is a different physical medium: NVLink-class links are an order
/// of magnitude slower than an on-die crossbar and — unlike the on-die
/// NoC — lossy in the fault envelopes we model (link-level CRC drops,
/// scheduled partitions, whole-device crashes). Timeouts therefore
/// scale up with latency, and partition/device-crash schedules live
/// here rather than in the per-device [`FaultConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Link parameters of the inter-GPU network. Defaults to the on-die
    /// shape with 5× the pipeline latency (~100 cycles each way).
    pub noc: NocConfig,
    /// Reliable-transport parameters for the fabric. Defaults scale the
    /// on-die timeouts by the latency ratio.
    pub transport: TransportConfig,
    /// Logical lease length of inter-GPU grants handed from the home
    /// node to a device L2. Device-local L2 leases are clamped inside
    /// the grant, so this should comfortably exceed `GpuConfig::lease`.
    pub grant_lease: Lease,
    /// Home-node directory service latency in cycles per request.
    pub home_latency: u64,
    /// Fault plan applied to the fabric links (seed-pure; independent
    /// streams from the per-device on-die plan).
    pub faults: FaultConfig,
    /// Number of scheduled fabric-partition events (link-down windows)
    /// per device link over the run.
    pub partition_count: u16,
    /// Cycle window `[1, window]` within which partitions start
    /// (uniformly, from the fault seed). `0` disables partitions.
    pub partition_window: u64,
    /// Length of each link-down window in cycles.
    pub partition_len: u64,
    /// Number of whole-device crash/rejoin events injected over the run.
    pub device_crash_count: u16,
    /// Cycle window `[1, window]` within which device crashes are
    /// scheduled. `0` disables crashes even when the count is nonzero.
    pub device_crash_window: u64,
}

// Multi-GPU snapshots embed the armed fabric plan (DESIGN.md §14), so
// the config must round-trip exactly like `FaultConfig` does.
crate::snap_fields!(FabricConfig {
    noc,
    transport,
    grant_lease,
    home_latency,
    faults,
    partition_count,
    partition_window,
    partition_len,
    device_crash_count,
    device_crash_window,
});

impl Default for FabricConfig {
    fn default() -> Self {
        let noc = NocConfig {
            latency: 100,
            ..NocConfig::default()
        };
        FabricConfig {
            noc,
            // Timeouts scale with the 5× slower medium; the end-to-end
            // retry must still outlast the worst-case backoff *plus* a
            // partition window, which `MultiGpuSim` checks at build.
            transport: TransportConfig {
                retransmit_timeout: 1024,
                max_backoff_exp: 6,
                nack_min_gap: 256,
                retry_timeout: 16_384,
            },
            grant_lease: Lease(64),
            home_latency: 20,
            faults: FaultConfig::default(),
            partition_count: 0,
            partition_window: 0,
            partition_len: 0,
            device_crash_count: 0,
            device_crash_window: 0,
        }
    }
}

impl FabricConfig {
    /// Returns the config with fabric packet loss at `drop_permille`
    /// (plus corruption at half that rate), seeded by `seed`. Any
    /// nonzero rate arms the fabric's reliable transport.
    #[must_use]
    pub fn lossy(mut self, seed: u64, drop_permille: u16) -> Self {
        self.faults = FaultConfig {
            seed,
            noc_drop_permille: drop_permille,
            noc_corrupt_permille: drop_permille / 2,
            ..self.faults
        };
        self
    }

    /// Returns the config with `count` link-down windows of `len` cycles
    /// scheduled uniformly in `[1, window]` per device link.
    #[must_use]
    pub fn with_partitions(mut self, count: u16, window: u64, len: u64) -> Self {
        self.partition_count = count;
        self.partition_window = window;
        self.partition_len = len;
        self
    }

    /// Returns the config with `count` whole-device crash/rejoin events
    /// scheduled uniformly in `[1, window]`.
    #[must_use]
    pub fn with_device_crashes(mut self, count: u16, window: u64) -> Self {
        self.device_crash_count = count;
        self.device_crash_window = window;
        self
    }

    /// Whether partitions are scheduled.
    #[must_use]
    pub fn partitions_active(&self) -> bool {
        self.partition_count > 0 && self.partition_window > 0 && self.partition_len > 0
    }

    /// Whether device crashes are scheduled.
    #[must_use]
    pub fn device_crashes_active(&self) -> bool {
        self.device_crash_count > 0 && self.device_crash_window > 0
    }

    /// Whether the fabric needs its reliable-transport layer: packet
    /// loss, a scheduled partition, or a device crash all lose traffic
    /// that only ack/retransmit (plus L1 end-to-end retry) recovers.
    #[must_use]
    pub fn lossy_active(&self) -> bool {
        self.faults.lossy_active() || self.partitions_active() || self.device_crashes_active()
    }
}

/// Complete configuration of a multi-GPU system: `n_devices` identical
/// GPUs (each a full [`GpuConfig`]) joined by an inter-GPU fabric to a
/// home-node directory (HALCONE-style hierarchical timestamp coherence;
/// see DESIGN.md §17).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiGpuConfig {
    /// Number of GPU devices.
    pub n_devices: usize,
    /// Per-device configuration (shared by all devices).
    pub gpu: GpuConfig,
    /// Inter-GPU fabric and home-node parameters.
    pub fabric: FabricConfig,
}

impl MultiGpuConfig {
    /// A scaled-down `n`-device system for unit and property tests,
    /// built on [`GpuConfig::test_small`].
    #[must_use]
    pub fn test_small(n_devices: usize) -> Self {
        MultiGpuConfig {
            n_devices,
            gpu: GpuConfig::test_small(),
            fabric: FabricConfig::default(),
        }
    }

    /// Returns the config with the given fabric parameters.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Label like `G-TSC-RC x4` used in experiment output.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} x{}", self.gpu.label(), self.n_devices)
    }
}

/// Complete configuration of the simulated GPU.
///
/// # Examples
///
/// ```
/// use gtsc_types::{ConsistencyModel, GpuConfig, ProtocolKind};
/// let cfg = GpuConfig::paper_default()
///     .with_protocol(ProtocolKind::Gtsc)
///     .with_consistency(ConsistencyModel::Rc);
/// assert_eq!(cfg.l2_banks, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub n_sms: usize,
    /// Warp slots per SM (paper: 48).
    pub warps_per_sm: usize,
    /// Threads per warp (paper: 32).
    pub threads_per_warp: usize,
    /// Per-SM private L1 data cache geometry (paper: 16 KiB).
    pub l1: CacheGeometry,
    /// Shared L2 geometry *per bank* (paper: 128 KiB × 8 banks = 1 MiB).
    pub l2: CacheGeometry,
    /// Number of L2 banks / memory partitions.
    pub l2_banks: usize,
    /// L1 MSHR entries.
    pub l1_mshr_entries: usize,
    /// Maximum merged requests per L1 MSHR entry.
    pub l1_mshr_merges: usize,
    /// L2 MSHR entries per bank.
    pub l2_mshr_entries: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 bank access latency in cycles.
    pub l2_latency: u64,
    /// Coherence protocol.
    pub protocol: ProtocolKind,
    /// Consistency model.
    pub consistency: ConsistencyModel,
    /// G-TSC logical lease length (Figure 14 sweeps 8–20).
    pub lease: Lease,
    /// Temporal-Coherence lease length in *physical cycles*. The TC paper
    /// (HPCA'13) found 800 core cycles the best *fixed* lease across its
    /// workloads; Section II-D3 of the G-TSC paper stresses that a
    /// suitable lease is hard to pick — sweep this to see why (e.g. STN
    /// prefers 50, CC prefers 800 in our workloads).
    pub tc_lease_cycles: u64,
    /// Hardware timestamp width in bits (paper: 16).
    pub ts_bits: u32,
    /// Request-combining policy (Section V-B).
    pub combine: CombinePolicy,
    /// Update-visibility policy (Section V-A).
    pub visibility: VisibilityPolicy,
    /// L2 inclusion policy (Section V-C). TC forces `Inclusive`.
    pub inclusion: InclusionPolicy,
    /// Tardis-2.0-style adaptive lease prediction in the G-TSC L2
    /// (extension beyond the paper; off by default).
    pub adaptive_lease: bool,
    /// Maximum outstanding memory instructions per warp under RC.
    pub max_outstanding_per_warp: usize,
    /// Warp scheduling policy.
    pub scheduler: WarpScheduler,
    /// NoC parameters.
    pub noc: NocConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Maximum CTAs resident per SM.
    pub max_ctas_per_sm: usize,
    /// Safety cap on simulated cycles (deadlock guard); `0` disables.
    pub max_cycles: u64,
    /// Forward-progress watchdog: abort with a structured stall diagnosis
    /// when no instruction issues, access completes, or CTA dispatches
    /// for this many consecutive cycles. Trips far earlier than
    /// `max_cycles` on a wedged run; `0` disables.
    pub watchdog_cycles: u64,
    /// Cap on individually formatted violations in a run report; any
    /// excess is folded into one trailing summary entry (a pathological
    /// run can detect millions).
    pub max_violations_reported: usize,
    /// Fault-injection plan (inert by default).
    pub faults: FaultConfig,
    /// Reliable-transport parameters; only consulted when a loss fault
    /// (`FaultConfig::lossy_active`) makes the NoC unreliable.
    pub transport: TransportConfig,
    /// Protocol event tracing (off by default).
    pub trace: TraceConfig,
    /// Online transition sanitizer (off by default): every protocol
    /// state transition is checked against the logical-time invariant
    /// catalog (DESIGN.md §12) and violations are appended to the run
    /// report. Costs one predicted-not-taken branch per transition when
    /// off, same as tracing.
    pub sanitize: bool,
}

impl GpuConfig {
    /// The evaluation platform of Section VI-A: 16 SMs with 16 KiB L1 each,
    /// 48 warps/SM × 32 threads, 8 × 128 KiB L2 banks, G-TSC with a lease
    /// of 10 and 16-bit timestamps, release consistency.
    #[must_use]
    pub fn paper_default() -> Self {
        GpuConfig {
            n_sms: 16,
            warps_per_sm: 48,
            threads_per_warp: 32,
            l1: CacheGeometry::new(16 * 1024, 4, 128),
            l2: CacheGeometry::new(128 * 1024, 8, 128),
            l2_banks: 8,
            l1_mshr_entries: 32,
            l1_mshr_merges: 8,
            l2_mshr_entries: 32,
            l1_latency: 1,
            l2_latency: 10,
            protocol: ProtocolKind::Gtsc,
            consistency: ConsistencyModel::Rc,
            lease: Lease::default(),
            tc_lease_cycles: 800,
            ts_bits: 16,
            combine: CombinePolicy::MergeInMshr,
            visibility: VisibilityPolicy::BlockLine,
            inclusion: InclusionPolicy::NonInclusive,
            adaptive_lease: false,
            max_outstanding_per_warp: 8,
            scheduler: WarpScheduler::Gto,
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            max_ctas_per_sm: 8,
            max_cycles: 200_000_000,
            watchdog_cycles: 1_000_000,
            max_violations_reported: 64,
            faults: FaultConfig::default(),
            transport: TransportConfig::default(),
            trace: TraceConfig::default(),
            sanitize: false,
        }
    }

    /// A scaled-down configuration for unit and property tests: 2 SMs,
    /// 4 warps/SM, tiny caches, 2 L2 banks. Protocol behaviour is identical;
    /// only capacities shrink.
    #[must_use]
    pub fn test_small() -> Self {
        GpuConfig {
            n_sms: 2,
            warps_per_sm: 4,
            threads_per_warp: 32,
            l1: CacheGeometry::new(2 * 1024, 2, 128),
            l2: CacheGeometry::new(4 * 1024, 4, 128),
            l2_banks: 2,
            l1_mshr_entries: 8,
            l1_mshr_merges: 4,
            l2_mshr_entries: 8,
            max_ctas_per_sm: 4,
            max_cycles: 5_000_000,
            watchdog_cycles: 200_000,
            ..GpuConfig::paper_default()
        }
    }

    /// Returns the config with `protocol` selected. TC implies an inclusive
    /// L2 (Section II-D2), which this setter enforces.
    #[must_use]
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        if matches!(protocol, ProtocolKind::Tc | ProtocolKind::TcWeak) {
            self.inclusion = InclusionPolicy::Inclusive;
        }
        self
    }

    /// Returns the config with `consistency` selected.
    #[must_use]
    pub fn with_consistency(mut self, consistency: ConsistencyModel) -> Self {
        self.consistency = consistency;
        self
    }

    /// Returns the config with the given lease length.
    #[must_use]
    pub fn with_lease(mut self, lease: Lease) -> Self {
        self.lease = lease;
        self
    }

    /// Returns the config with the given fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the config with the given event-tracing plan.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Returns the config with the given reliable-transport parameters.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Returns the config with the online transition sanitizer toggled.
    #[must_use]
    pub fn with_sanitize(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// Total number of warp slots on the GPU.
    #[must_use]
    pub fn total_warps(&self) -> usize {
        self.n_sms * self.warps_per_sm
    }

    /// Label like `G-TSC-RC` used in figures.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}-{}", self.protocol.label(), self.consistency.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snap::Snap;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = GpuConfig::paper_default();
        assert_eq!(c.n_sms, 16);
        assert_eq!(c.warps_per_sm, 48);
        assert_eq!(c.threads_per_warp, 32);
        assert_eq!(c.l1.total_bytes(), 16 * 1024);
        assert_eq!(c.l2.total_bytes() * c.l2_banks, 1024 * 1024);
        assert_eq!(c.ts_bits, 16);
    }

    #[test]
    fn tc_forces_inclusion() {
        let c = GpuConfig::paper_default().with_protocol(ProtocolKind::Tc);
        assert_eq!(c.inclusion, InclusionPolicy::Inclusive);
        let c = GpuConfig::paper_default().with_protocol(ProtocolKind::Gtsc);
        assert_eq!(c.inclusion, InclusionPolicy::NonInclusive);
    }

    #[test]
    fn labels_match_figures() {
        let c = GpuConfig::paper_default()
            .with_protocol(ProtocolKind::Gtsc)
            .with_consistency(ConsistencyModel::Sc);
        assert_eq!(c.label(), "G-TSC-SC");
        assert_eq!(ProtocolKind::NoL1.label(), "BL");
        assert_eq!(ProtocolKind::TcWeak.label(), "TC-Weak");
        assert_eq!(ProtocolKind::L1NoCoherence.label(), "BL-W/L1");
    }

    #[test]
    fn test_small_is_consistent() {
        let c = GpuConfig::test_small();
        assert_eq!(c.total_warps(), 8);
        assert!(c.l1.total_bytes() < GpuConfig::paper_default().l1.total_bytes());
    }

    #[test]
    fn faults_default_inert_chaos_active() {
        assert!(!FaultConfig::default().is_active());
        assert!(!GpuConfig::paper_default().faults.is_active());
        let chaos = FaultConfig::chaos(7);
        assert!(chaos.is_active());
        assert_eq!(chaos.seed, 7);
        // Probabilities are permille values.
        assert!(chaos.noc_jitter_permille <= 1000);
        assert!(chaos.dram_jitter_permille <= 1000);
        let cfg = GpuConfig::test_small().with_faults(chaos);
        assert_eq!(cfg.faults, chaos);
    }

    #[test]
    fn trace_default_inert_presets_active() {
        assert!(!TraceConfig::default().is_enabled());
        assert!(!GpuConfig::paper_default().trace.is_enabled());
        assert!(TraceConfig::flight().is_enabled());
        let full = TraceConfig::full();
        assert!(full.is_enabled());
        assert_eq!(full.sample_interval, 1024);
        let t = TraceConfig::flight()
            .with_interval(256)
            .with_class_mask(0b11)
            .with_blocks(8, 16)
            .with_flight_capacity(32);
        assert_eq!(t.sample_interval, 256);
        assert_eq!(t.class_mask, 0b11);
        assert_eq!(t.block_range, Some((8, 16)));
        assert_eq!(t.flight_capacity, 32);
        let cfg = GpuConfig::test_small().with_trace(t);
        assert_eq!(cfg.trace, t);
    }

    #[test]
    fn loss_faults_are_off_in_chaos_and_on_in_lossy() {
        let chaos = FaultConfig::chaos(3);
        assert!(!chaos.lossy_active(), "chaos never drops");
        assert_eq!(chaos.noc_drop_permille, 0);
        assert_eq!(chaos.l2_crash_count, 0);
        let lossy = FaultConfig::lossy(3, 50);
        assert!(lossy.lossy_active() && lossy.is_active());
        assert_eq!(lossy.noc_drop_permille, 50);
        assert_eq!(lossy.noc_corrupt_permille, 25);
        // Everything chaos perturbs stays on underneath.
        assert_eq!(lossy.noc_jitter_permille, chaos.noc_jitter_permille);
        let crashy = FaultConfig::default().with_bank_crashes(2, 10_000);
        assert!(crashy.lossy_active() && crashy.is_active());
        assert!(
            !FaultConfig::default()
                .with_bank_crashes(2, 0)
                .lossy_active(),
            "a zero window schedules nothing"
        );
    }

    #[test]
    fn transport_defaults_are_sane() {
        let t = TransportConfig::default();
        assert!(t.retransmit_timeout > 2 * NocConfig::default().latency);
        assert!(
            t.retry_timeout >= t.retransmit_timeout << t.max_backoff_exp.min(4),
            "end-to-end retry must outlast several transport backoffs"
        );
        assert_eq!(GpuConfig::paper_default().transport, t);
        let custom = TransportConfig {
            retransmit_timeout: 128,
            ..t
        };
        let cfg = GpuConfig::test_small().with_transport(custom);
        assert_eq!(cfg.transport.retransmit_timeout, 128);
    }

    #[test]
    fn sanitizer_defaults_off() {
        assert!(!GpuConfig::paper_default().sanitize);
        assert!(!GpuConfig::test_small().sanitize);
        assert!(GpuConfig::test_small().with_sanitize(true).sanitize);
    }

    #[test]
    fn fabric_default_inert_knobs_arm_transport() {
        let f = FabricConfig::default();
        assert!(!f.lossy_active());
        assert!(f.noc.latency > NocConfig::default().latency);
        assert!(f.transport.retransmit_timeout > TransportConfig::default().retransmit_timeout);
        assert!(f.grant_lease.0 > Lease::default().0);
        let lossy = FabricConfig::default().lossy(9, 40);
        assert!(lossy.lossy_active());
        assert_eq!(lossy.faults.noc_drop_permille, 40);
        assert_eq!(lossy.faults.noc_corrupt_permille, 20);
        assert_eq!(lossy.faults.seed, 9);
        let part = FabricConfig::default().with_partitions(2, 10_000, 500);
        assert!(part.partitions_active() && part.lossy_active());
        assert!(
            !FabricConfig::default()
                .with_partitions(2, 0, 500)
                .partitions_active(),
            "a zero window schedules nothing"
        );
        let crashy = FabricConfig::default().with_device_crashes(1, 5_000);
        assert!(crashy.device_crashes_active() && crashy.lossy_active());
    }

    #[test]
    fn multi_gpu_config_labels_and_round_trip() {
        let m = MultiGpuConfig::test_small(4);
        assert_eq!(m.n_devices, 4);
        assert_eq!(m.label(), "G-TSC-RC x4");
        let f = FabricConfig::default().with_partitions(1, 1000, 100);
        let m = m.with_fabric(f);
        assert_eq!(m.fabric, f);
        // The fabric config must round-trip through the snapshot codec.
        let mut w = crate::snap::SnapWriter::new();
        f.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snap::SnapReader::new(&bytes);
        let back = FabricConfig::load(&mut r).expect("decode");
        assert_eq!(back, f);
    }

    #[test]
    fn watchdog_defaults_on_but_below_cycle_limit() {
        let c = GpuConfig::paper_default();
        assert!(c.watchdog_cycles > 0 && c.watchdog_cycles < c.max_cycles);
        let t = GpuConfig::test_small();
        assert!(t.watchdog_cycles > 0 && t.watchdog_cycles < t.max_cycles);
        assert_eq!(t.max_violations_reported, 64);
    }
}
