//! Byte addresses, cache-block addresses, and cache geometry arithmetic.

use std::fmt;

/// A byte address in the GPU's global memory space.
///
/// Addresses are plain 64-bit values; the public field keeps the newtype
/// ergonomic for arithmetic in workload generators while the type still
/// distinguishes byte addresses from [`BlockAddr`]s at compile time.
///
/// # Examples
///
/// ```
/// use gtsc_types::Addr;
/// let a = Addr(0x80);
/// assert_eq!(a.offset(0x40), Addr(0xC0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address `bytes` past `self`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-block (line) address: a byte address with the block offset
/// stripped, i.e. `byte_addr >> log2(block_size)`.
///
/// All coherence state in this workspace is tracked at block granularity,
/// matching the paper (128-byte lines in GPGPU-Sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Reconstructs the first byte address of this block given the
    /// log2 of the block size.
    #[must_use]
    pub fn byte_addr(self, block_shift: u32) -> Addr {
        Addr(self.0 << block_shift)
    }

    /// Maps this block to one of `n_banks` L2 banks/partitions.
    ///
    /// Uses the low block-address bits, as GPGPU-Sim's default address
    /// mapping interleaves consecutive lines across partitions.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks == 0`.
    #[must_use]
    pub fn bank(self, n_banks: usize) -> usize {
        assert!(n_banks > 0, "bank count must be nonzero");
        (self.0 % n_banks as u64) as usize
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// Size/associativity description of a cache and the index/tag arithmetic
/// derived from it.
///
/// # Examples
///
/// ```
/// use gtsc_types::{Addr, CacheGeometry};
/// let g = CacheGeometry::new(16 * 1024, 4, 128); // 16 KiB, 4-way, 128B lines
/// assert_eq!(g.n_sets(), 32);
/// let b = g.block_of(Addr(0x4080));
/// assert_eq!(g.set_of(b), g.set_of(b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    total_bytes: usize,
    ways: usize,
    block_size: usize,
    block_shift: u32,
    n_sets: usize,
    set_stride: u64,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `total_bytes` capacity,
    /// `ways`-way set associativity and `block_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, `block_size` is not a power of two,
    /// or the resulting set count is not a power of two.
    #[must_use]
    pub fn new(total_bytes: usize, ways: usize, block_size: usize) -> Self {
        assert!(total_bytes > 0 && ways > 0 && block_size > 0);
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let n_blocks = total_bytes / block_size;
        assert!(
            n_blocks.is_multiple_of(ways),
            "capacity must divide evenly into ways"
        );
        let n_sets = n_blocks / ways;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry {
            total_bytes,
            ways,
            block_size,
            block_shift: block_size.trailing_zeros(),
            n_sets,
            set_stride: 1,
        }
    }

    /// Returns the geometry with the set index computed from
    /// `block / stride` instead of `block`. A cache banked by low block
    /// bits (bank = `block % n_banks`) must use `stride = n_banks`, or
    /// only `1/n_banks` of its sets would ever be indexed within a bank.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_set_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "set stride must be nonzero");
        self.set_stride = stride;
        self
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Associativity (lines per set).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// `log2(block_size)`.
    #[must_use]
    pub fn block_shift(&self) -> u32 {
        self.block_shift
    }

    /// Number of sets.
    #[must_use]
    pub fn n_sets(&self) -> usize {
        self.n_sets
    }

    /// The block containing byte address `a`.
    #[must_use]
    pub fn block_of(&self, a: Addr) -> BlockAddr {
        BlockAddr(a.0 >> self.block_shift)
    }

    /// The set index block `b` maps to.
    #[must_use]
    pub fn set_of(&self, b: BlockAddr) -> usize {
        ((b.0 / self.set_stride) % self.n_sets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_strips_offset() {
        let g = CacheGeometry::new(1024, 2, 128);
        assert_eq!(g.block_of(Addr(0)), g.block_of(Addr(127)));
        assert_ne!(g.block_of(Addr(0)), g.block_of(Addr(128)));
        assert_eq!(g.block_of(Addr(256)).byte_addr(g.block_shift()), Addr(256));
    }

    #[test]
    fn geometry_counts() {
        let g = CacheGeometry::new(16 * 1024, 4, 128);
        assert_eq!(g.n_sets(), 32);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.block_size(), 128);
        assert_eq!(g.block_shift(), 7);
    }

    #[test]
    fn sets_wrap_modulo() {
        let g = CacheGeometry::new(1024, 1, 128); // 8 sets
        assert_eq!(g.set_of(BlockAddr(3)), 3);
        assert_eq!(g.set_of(BlockAddr(11)), 3);
    }

    #[test]
    fn banks_interleave() {
        assert_eq!(BlockAddr(0).bank(8), 0);
        assert_eq!(BlockAddr(9).bank(8), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_rejected() {
        let _ = CacheGeometry::new(1024, 2, 96);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(BlockAddr(255).to_string(), "B0xff");
    }
}
