//! Common vocabulary types for the G-TSC reproduction.
//!
//! This crate defines the newtypes, configuration structures and statistics
//! counters shared by every other crate in the workspace: addresses and
//! cache-block addresses, logical [`Timestamp`]s (the heart of G-TSC),
//! physical [`Cycle`]s, hardware identifiers ([`SmId`], [`WarpId`], ...),
//! the top-level [`GpuConfig`], and the [`SimStats`] accumulator.
//!
//! # Examples
//!
//! ```
//! use gtsc_types::{Addr, CacheGeometry, GpuConfig};
//!
//! let cfg = GpuConfig::paper_default();
//! assert_eq!(cfg.n_sms, 16);
//! let geom = CacheGeometry::new(16 * 1024, 4, 128);
//! let a = Addr(0x1_0040);
//! assert_eq!(geom.block_of(a).byte_addr(7).0, 0x1_0000);
//! ```

pub mod addr;
pub mod config;
pub mod ids;
pub mod snap;
pub mod stats;
pub mod time;
pub mod value;

pub use addr::{Addr, BlockAddr, CacheGeometry};
pub use config::{
    CombinePolicy, ConsistencyModel, DramConfig, FabricConfig, FaultConfig, GpuConfig,
    InclusionPolicy, MultiGpuConfig, NocConfig, NocTopology, PagePolicy, ProtocolKind, TraceConfig,
    TraceMode, TransportConfig, VisibilityPolicy, WarpScheduler,
};
pub use ids::{BankId, CtaId, GlobalWarpId, KernelId, LaneId, SmId, SpanId, WarpId};
pub use snap::{
    crc32, Snap, SnapReader, SnapWriter, SnapshotBuilder, SnapshotError, SnapshotFile, SNAP_MAGIC,
    SNAP_VERSION,
};
pub use stats::{
    CacheStats, CycleBuckets, CycleReason, DramStats, LatencyHist, NocStats, SimStats, SmStats,
    StallKind, TransportStats,
};
pub use time::{Cycle, Lease, Timestamp};
pub use value::Version;
