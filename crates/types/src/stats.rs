//! Statistics counters gathered by the simulator.
//!
//! These are passive, public-field data structures in the C spirit: every
//! component owns one, increments it inline, and the simulator merges them
//! into a [`SimStats`] at the end of a run. The counters map one-to-one to
//! the quantities plotted in the paper's evaluation (execution cycles,
//! pipeline stalls from memory delays, NoC traffic, cache miss classes).

use crate::time::Cycle;

/// Why a warp could not issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Waiting on an outstanding load/store (memory delay — Figure 13).
    Memory,
    /// Waiting at an explicit fence.
    Fence,
    /// Waiting at a CTA barrier.
    Barrier,
    /// Structural: LDST queue or MSHR full.
    Structural,
}

/// Top-down attribution of one simulated SM-cycle (DESIGN.md §15).
///
/// Every cycle of every SM lands in exactly one bucket, so the per-SM
/// [`CycleBuckets`] sum exactly to the elapsed cycle count — the
/// invariant the sanitizer and `tests/spans.rs` assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleReason {
    /// The SM issued at least one instruction this cycle.
    Issue,
    /// All issuable warps were blocked behind a lease-expired refetch
    /// (a G-TSC coherence miss in flight).
    LeaseExpiredWait,
    /// The L1 MSHR file was full, rejecting new misses.
    MshrFull,
    /// Requests were queued awaiting NoC injection bandwidth.
    NocBackpressure,
    /// Waiting on the memory system below the NoC (L2 miss / DRAM).
    DramWait,
    /// Stalled by a §V-D timestamp-rollover epoch freeze.
    RolloverFreeze,
    /// No resident warps (or nothing to do).
    Idle,
}

impl CycleReason {
    /// All reasons, in bucket-index order.
    pub const ALL: [CycleReason; 7] = [
        CycleReason::Issue,
        CycleReason::LeaseExpiredWait,
        CycleReason::MshrFull,
        CycleReason::NocBackpressure,
        CycleReason::DramWait,
        CycleReason::RolloverFreeze,
        CycleReason::Idle,
    ];

    /// Stable short name, used in folded-flamegraph and Prometheus output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CycleReason::Issue => "issue",
            CycleReason::LeaseExpiredWait => "lease_expired_wait",
            CycleReason::MshrFull => "mshr_full",
            CycleReason::NocBackpressure => "noc_backpressure",
            CycleReason::DramWait => "dram_wait",
            CycleReason::RolloverFreeze => "rollover_freeze",
            CycleReason::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            CycleReason::Issue => 0,
            CycleReason::LeaseExpiredWait => 1,
            CycleReason::MshrFull => 2,
            CycleReason::NocBackpressure => 3,
            CycleReason::DramWait => 4,
            CycleReason::RolloverFreeze => 5,
            CycleReason::Idle => 6,
        }
    }
}

/// Per-[`CycleReason`] cycle counts for one SM.
///
/// # Examples
///
/// ```
/// use gtsc_types::{CycleBuckets, CycleReason};
/// let mut b = CycleBuckets::default();
/// b.record(CycleReason::Issue);
/// b.record(CycleReason::DramWait);
/// assert_eq!(b.get(CycleReason::Issue), 1);
/// assert_eq!(b.sum(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBuckets {
    counts: [u64; 7],
}

impl CycleBuckets {
    /// Attributes one cycle to `reason`.
    pub fn record(&mut self, reason: CycleReason) {
        self.counts[reason.index()] += 1;
    }

    /// Cycles attributed to `reason`.
    #[must_use]
    pub fn get(&self, reason: CycleReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total cycles attributed — must equal elapsed cycles.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &CycleBuckets) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += b;
        }
    }

    /// Bucket-wise `self - rhs` (saturating), for interval deltas.
    #[must_use]
    pub fn diff(&self, rhs: &CycleBuckets) -> CycleBuckets {
        let mut out = *self;
        for (a, b) in out.counts.iter_mut().zip(rhs.counts.iter()) {
            *a = a.saturating_sub(*b);
        }
        out
    }
}

/// A log2-bucketed latency histogram (bucket *i* counts samples in
/// `[2^i, 2^(i+1))` cycles, except bucket 0 = `[0, 2)` and the last
/// bucket absorbs everything larger).
///
/// # Examples
///
/// ```
/// use gtsc_types::LatencyHist;
/// let mut h = LatencyHist::default();
/// for l in [1, 3, 100, 300, 10_000] {
///     h.record(l);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 4.0);
/// // The mean is exact (summed samples), not a bucket-edge estimate.
/// assert_eq!(h.mean(), (1.0 + 3.0 + 100.0 + 300.0 + 10_000.0) / 5.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; 20],
    /// Exact sum of all recorded samples (for [`LatencyHist::mean`]).
    sum: u64,
}

impl LatencyHist {
    /// Records one latency sample, in cycles.
    pub fn record(&mut self, latency: u64) {
        let b = (64 - latency.max(1).leading_zeros()) as usize - 1;
        self.buckets[b.min(self.buckets.len() - 1)] += 1;
        self.sum = self.sum.saturating_add(latency);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact arithmetic mean of all recorded samples (not a bucket-edge
    /// estimate); `0` with no samples.
    ///
    /// # Examples
    ///
    /// ```
    /// use gtsc_types::LatencyHist;
    /// let mut h = LatencyHist::default();
    /// assert_eq!(h.mean(), 0.0);
    /// h.record(10);
    /// h.record(20);
    /// assert_eq!(h.mean(), 15.0);
    /// ```
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper edge of bucket `i`: bucket 0 covers `[0, 2)`, bucket `i > 0`
    /// covers `[2^i, 2^(i+1))`.
    fn upper_edge(i: usize) -> f64 {
        (1u64 << (i + 1)) as f64
    }

    /// An upper-bound estimate of the `p`-quantile (`p` in `[0, 1]`):
    /// the upper edge of the *non-empty* bucket containing the target
    /// sample. `0` with no samples — in particular, `2.0` (bucket 0's
    /// edge) is reported only when samples were actually recorded in
    /// `[0, 2)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gtsc_types::LatencyHist;
    /// let mut h = LatencyHist::default();
    /// h.record(100); // bucket [64, 128)
    /// // No samples in [0, 2): even p = 0 resolves to the first
    /// // non-empty bucket, never to bucket 0's edge.
    /// assert_eq!(h.percentile(0.0), 128.0);
    /// h.record(1); // now [0, 2) is populated
    /// assert_eq!(h.percentile(0.0), 2.0);
    /// ```
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                // An empty bucket cannot contain the target sample, so it
                // can never contribute its upper edge.
                continue;
            }
            seen += b;
            if seen >= target {
                return Self::upper_edge(i);
            }
        }
        Self::upper_edge(self.buckets.len() - 1)
    }

    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(rhs.sum);
    }

    /// Bucket-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same histogram.
    #[must_use]
    pub fn diff(&self, rhs: &LatencyHist) -> LatencyHist {
        let mut out = *self;
        for (a, b) in out.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.sum = self.sum.saturating_sub(rhs.sum);
        out
    }

    /// Raw bucket counts (bucket *i* covers `[2^i, 2^(i+1))`, bucket 0
    /// covers `[0, 2)`), for exposition formats that need the shape.
    #[must_use]
    pub fn buckets(&self) -> &[u64; 20] {
        &self.buckets
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper edge of bucket `i` as a plain integer (`2^(i+1)`), the
    /// `le=` boundary used when rendering Prometheus histograms.
    #[must_use]
    pub fn bucket_upper_edge(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }
}

/// Per-SM pipeline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Instructions issued (all classes).
    pub issued: u64,
    /// Memory instructions issued.
    pub mem_issued: u64,
    /// Warp-cycles stalled on memory delays (the Figure 13 metric).
    pub memory_stall_cycles: u64,
    /// Warp-cycles stalled at fences.
    pub fence_stall_cycles: u64,
    /// Warp-cycles stalled at barriers.
    pub barrier_stall_cycles: u64,
    /// Warp-cycles stalled for structural hazards.
    pub structural_stall_cycles: u64,
    /// Cycles in which the SM issued nothing although warps were resident.
    pub idle_cycles: u64,
    /// Cycles in which the SM issued at least one instruction.
    pub active_cycles: u64,
    /// Histogram of memory-access latencies (issue → completion).
    pub mem_latency: LatencyHist,
    /// Top-down attribution of every simulated cycle (DESIGN.md §15);
    /// sums exactly to the elapsed cycle count.
    pub cycle_buckets: CycleBuckets,
}

impl SmStats {
    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &SmStats) {
        self.issued += rhs.issued;
        self.mem_issued += rhs.mem_issued;
        self.memory_stall_cycles += rhs.memory_stall_cycles;
        self.fence_stall_cycles += rhs.fence_stall_cycles;
        self.barrier_stall_cycles += rhs.barrier_stall_cycles;
        self.structural_stall_cycles += rhs.structural_stall_cycles;
        self.idle_cycles += rhs.idle_cycles;
        self.active_cycles += rhs.active_cycles;
        self.mem_latency.merge(&rhs.mem_latency);
        self.cycle_buckets.merge(&rhs.cycle_buckets);
    }

    /// Records one stalled warp-cycle of the given kind.
    pub fn record_stall(&mut self, kind: StallKind) {
        match kind {
            StallKind::Memory => self.memory_stall_cycles += 1,
            StallKind::Fence => self.fence_stall_cycles += 1,
            StallKind::Barrier => self.barrier_stall_cycles += 1,
            StallKind::Structural => self.structural_stall_cycles += 1,
        }
    }

    /// All stall cycles combined.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.memory_stall_cycles
            + self.fence_stall_cycles
            + self.barrier_stall_cycles
            + self.structural_stall_cycles
    }

    /// Field-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same counters.
    #[must_use]
    pub fn diff(&self, rhs: &SmStats) -> SmStats {
        SmStats {
            issued: self.issued.saturating_sub(rhs.issued),
            mem_issued: self.mem_issued.saturating_sub(rhs.mem_issued),
            memory_stall_cycles: self
                .memory_stall_cycles
                .saturating_sub(rhs.memory_stall_cycles),
            fence_stall_cycles: self
                .fence_stall_cycles
                .saturating_sub(rhs.fence_stall_cycles),
            barrier_stall_cycles: self
                .barrier_stall_cycles
                .saturating_sub(rhs.barrier_stall_cycles),
            structural_stall_cycles: self
                .structural_stall_cycles
                .saturating_sub(rhs.structural_stall_cycles),
            idle_cycles: self.idle_cycles.saturating_sub(rhs.idle_cycles),
            active_cycles: self.active_cycles.saturating_sub(rhs.active_cycles),
            mem_latency: self.mem_latency.diff(&rhs.mem_latency),
            cycle_buckets: self.cycle_buckets.diff(&rhs.cycle_buckets),
        }
    }
}

/// Counters for one cache (an L1 or an L2 bank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups (loads + stores).
    pub accesses: u64,
    /// Lookups that hit with a valid (unexpired) line.
    pub hits: u64,
    /// Lookups that missed because the tag was absent.
    pub cold_misses: u64,
    /// Tag matched but the lease had expired / `warp_ts` exceeded `rts`
    /// (a *coherence miss*, Section II-D).
    pub expired_misses: u64,
    /// Lookups blocked on a line awaiting a write ack (update visibility,
    /// Section V-A).
    pub blocked_on_pending_write: u64,
    /// Renewal requests sent (L1) or served (L2).
    pub renewals: u64,
    /// Store operations processed.
    pub stores: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Cycles a write sat stalled waiting for leases to expire (TC only).
    pub write_stall_cycles: u64,
    /// Cycles replacement stalled because every victim had a live lease
    /// (TC inclusive-L2 only).
    pub eviction_stall_cycles: u64,
    /// Timestamp rollover events handled (G-TSC, Section V-D).
    pub ts_rollovers: u64,
    /// Requests merged into an existing MSHR entry.
    pub mshr_merges: u64,
    /// Duplicate store/atomic requests dropped by the L2 replay filter
    /// (nonzero only under fault injection's at-least-once delivery).
    pub replayed_stores: u64,
    /// End-to-end retries: requests re-issued by the L1 after the
    /// `TransportConfig::retry_timeout` elapsed without an answer
    /// (nonzero only under loss-fault injection).
    pub retries: u64,
}

impl CacheStats {
    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &CacheStats) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.cold_misses += rhs.cold_misses;
        self.expired_misses += rhs.expired_misses;
        self.blocked_on_pending_write += rhs.blocked_on_pending_write;
        self.renewals += rhs.renewals;
        self.stores += rhs.stores;
        self.evictions += rhs.evictions;
        self.write_stall_cycles += rhs.write_stall_cycles;
        self.eviction_stall_cycles += rhs.eviction_stall_cycles;
        self.ts_rollovers += rhs.ts_rollovers;
        self.mshr_merges += rhs.mshr_merges;
        self.replayed_stores += rhs.replayed_stores;
        self.retries += rhs.retries;
    }

    /// All misses (cold + expired).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.cold_misses + self.expired_misses
    }

    /// Hit rate in `[0, 1]`; `0` when there were no accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Field-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same counters.
    #[must_use]
    pub fn diff(&self, rhs: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses.saturating_sub(rhs.accesses),
            hits: self.hits.saturating_sub(rhs.hits),
            cold_misses: self.cold_misses.saturating_sub(rhs.cold_misses),
            expired_misses: self.expired_misses.saturating_sub(rhs.expired_misses),
            blocked_on_pending_write: self
                .blocked_on_pending_write
                .saturating_sub(rhs.blocked_on_pending_write),
            renewals: self.renewals.saturating_sub(rhs.renewals),
            stores: self.stores.saturating_sub(rhs.stores),
            evictions: self.evictions.saturating_sub(rhs.evictions),
            write_stall_cycles: self
                .write_stall_cycles
                .saturating_sub(rhs.write_stall_cycles),
            eviction_stall_cycles: self
                .eviction_stall_cycles
                .saturating_sub(rhs.eviction_stall_cycles),
            ts_rollovers: self.ts_rollovers.saturating_sub(rhs.ts_rollovers),
            mshr_merges: self.mshr_merges.saturating_sub(rhs.mshr_merges),
            replayed_stores: self.replayed_stores.saturating_sub(rhs.replayed_stores),
            retries: self.retries.saturating_sub(rhs.retries),
        }
    }
}

/// Reliable-transport counters (`gtsc_noc::ReliableNet`), all zero on
/// the fault-free fast path where the transport runs in passthrough
/// mode. `bank_recoveries` is filled in by the simulator (crash events
/// are injected above the NoC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Payloads delivered to the protocol exactly once, in per-flow
    /// FIFO order (the transport's contract).
    pub delivered: u64,
    /// Data segments re-sent (timeout- or NACK-driven).
    pub retransmits: u64,
    /// Retransmits triggered by a timeout expiry specifically.
    pub timeouts: u64,
    /// NACKs sent by receivers (gap observed or payload corrupted).
    pub nacks: u64,
    /// Unacked segments retired by cumulative ACKs.
    pub acks: u64,
    /// Duplicate or stale segments discarded by the receive window.
    pub dup_dropped: u64,
    /// Retransmits that hit the exponential-backoff cap.
    pub max_backoff_hits: u64,
    /// Per-flow transport resets (both ends), e.g. around a bank crash.
    pub flows_reset: u64,
    /// L2-bank crash/recovery events completed.
    pub bank_recoveries: u64,
}

impl TransportStats {
    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &TransportStats) {
        self.delivered += rhs.delivered;
        self.retransmits += rhs.retransmits;
        self.timeouts += rhs.timeouts;
        self.nacks += rhs.nacks;
        self.acks += rhs.acks;
        self.dup_dropped += rhs.dup_dropped;
        self.max_backoff_hits += rhs.max_backoff_hits;
        self.flows_reset += rhs.flows_reset;
        self.bank_recoveries += rhs.bank_recoveries;
    }

    /// Field-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same counters.
    #[must_use]
    pub fn diff(&self, rhs: &TransportStats) -> TransportStats {
        TransportStats {
            delivered: self.delivered.saturating_sub(rhs.delivered),
            retransmits: self.retransmits.saturating_sub(rhs.retransmits),
            timeouts: self.timeouts.saturating_sub(rhs.timeouts),
            nacks: self.nacks.saturating_sub(rhs.nacks),
            acks: self.acks.saturating_sub(rhs.acks),
            dup_dropped: self.dup_dropped.saturating_sub(rhs.dup_dropped),
            max_backoff_hits: self.max_backoff_hits.saturating_sub(rhs.max_backoff_hits),
            flows_reset: self.flows_reset.saturating_sub(rhs.flows_reset),
            bank_recoveries: self.bank_recoveries.saturating_sub(rhs.bank_recoveries),
        }
    }
}

/// Interconnect counters (the Figure 15 metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets injected (both networks).
    pub packets: u64,
    /// Flits transferred — the paper's "NoC traffic".
    pub flits: u64,
    /// Control-only packets (requests, renewals, acks without data).
    pub control_packets: u64,
    /// Packets carrying a data block.
    pub data_packets: u64,
    /// Sum of per-packet latencies, for averaging.
    pub total_packet_latency: u64,
    /// Cycles packets spent queued awaiting injection bandwidth.
    pub queue_cycles: u64,
}

impl NocStats {
    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &NocStats) {
        self.packets += rhs.packets;
        self.flits += rhs.flits;
        self.control_packets += rhs.control_packets;
        self.data_packets += rhs.data_packets;
        self.total_packet_latency += rhs.total_packet_latency;
        self.queue_cycles += rhs.queue_cycles;
    }

    /// Mean end-to-end packet latency; `0` with no packets.
    #[must_use]
    pub fn avg_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_packet_latency as f64 / self.packets as f64
        }
    }

    /// Field-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same counters.
    #[must_use]
    pub fn diff(&self, rhs: &NocStats) -> NocStats {
        NocStats {
            packets: self.packets.saturating_sub(rhs.packets),
            flits: self.flits.saturating_sub(rhs.flits),
            control_packets: self.control_packets.saturating_sub(rhs.control_packets),
            data_packets: self.data_packets.saturating_sub(rhs.data_packets),
            total_packet_latency: self
                .total_packet_latency
                .saturating_sub(rhs.total_packet_latency),
            queue_cycles: self.queue_cycles.saturating_sub(rhs.queue_cycles),
        }
    }
}

/// DRAM counters (per partition, merged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activations).
    pub row_misses: u64,
    /// Requests rejected for a full queue (back-pressure events).
    pub queue_full_events: u64,
}

impl DramStats {
    /// Adds `rhs` into `self`.
    pub fn merge(&mut self, rhs: &DramStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.row_hits += rhs.row_hits;
        self.row_misses += rhs.row_misses;
        self.queue_full_events += rhs.queue_full_events;
    }

    /// Field-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same counters.
    #[must_use]
    pub fn diff(&self, rhs: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads.saturating_sub(rhs.reads),
            writes: self.writes.saturating_sub(rhs.writes),
            row_hits: self.row_hits.saturating_sub(rhs.row_hits),
            row_misses: self.row_misses.saturating_sub(rhs.row_misses),
            queue_full_events: self.queue_full_events.saturating_sub(rhs.queue_full_events),
        }
    }
}

/// Aggregated results of one simulation run.
///
/// The `sm`/`l1`/`l2`/`dram` fields are merged across all components;
/// the `per_*` vectors preserve the per-component structure (one entry
/// per SM, L1, L2 bank, DRAM partition) for imbalance analyses and the
/// interval sampler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total execution time.
    pub cycles: Cycle,
    /// Simulated steps covered by cycle accounting; every entry of
    /// `per_sm[i].cycle_buckets` sums to exactly this value. Zero for
    /// producers that predate cycle accounting.
    pub accounted_cycles: u64,
    /// Merged SM pipeline counters.
    pub sm: SmStats,
    /// Merged private-L1 counters.
    pub l1: CacheStats,
    /// Merged shared-L2 counters.
    pub l2: CacheStats,
    /// Interconnect counters.
    pub noc: NocStats,
    /// Reliable-transport counters (all zero without loss faults).
    pub transport: TransportStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Per-SM pipeline counters (index = SM id); empty when the producer
    /// only had merged totals.
    pub per_sm: Vec<SmStats>,
    /// Per-SM private-L1 counters (index = SM id).
    pub per_l1: Vec<CacheStats>,
    /// Per-bank shared-L2 counters (index = bank id).
    pub per_l2: Vec<CacheStats>,
    /// Per-partition DRAM counters (index = partition id).
    pub per_dram: Vec<DramStats>,
}

impl SimStats {
    /// Instructions per cycle over the whole GPU; `0` for an empty run.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles.0 == 0 {
            0.0
        } else {
            self.sm.issued as f64 / self.cycles.0 as f64
        }
    }

    /// Field-wise `self - rhs` (saturating), for interval deltas where
    /// `rhs` is an earlier snapshot of the same run. Per-component
    /// vectors are diffed element-wise over the common prefix.
    #[must_use]
    pub fn diff(&self, rhs: &SimStats) -> SimStats {
        fn diff_vec<T: Default + Clone>(a: &[T], b: &[T], f: impl Fn(&T, &T) -> T) -> Vec<T> {
            a.iter()
                .enumerate()
                .map(|(i, x)| b.get(i).map_or_else(|| x.clone(), |y| f(x, y)))
                .collect()
        }
        SimStats {
            cycles: Cycle(self.cycles.0.saturating_sub(rhs.cycles.0)),
            accounted_cycles: self.accounted_cycles.saturating_sub(rhs.accounted_cycles),
            sm: self.sm.diff(&rhs.sm),
            l1: self.l1.diff(&rhs.l1),
            l2: self.l2.diff(&rhs.l2),
            noc: self.noc.diff(&rhs.noc),
            transport: self.transport.diff(&rhs.transport),
            dram: self.dram.diff(&rhs.dram),
            per_sm: diff_vec(&self.per_sm, &rhs.per_sm, |a, b| a.diff(b)),
            per_l1: diff_vec(&self.per_l1, &rhs.per_l1, |a, b| a.diff(b)),
            per_l2: diff_vec(&self.per_l2, &rhs.per_l2, |a, b| a.diff(b)),
            per_dram: diff_vec(&self.per_dram, &rhs.per_dram, |a, b| a.diff(b)),
        }
    }
}

// Snapshot encodings (DESIGN.md §14). `LatencyHist`'s impl must live in
// this module because its fields are private; the plain counter structs
// ride along for locality.
impl crate::snap::Snap for LatencyHist {
    fn save(&self, w: &mut crate::snap::SnapWriter) {
        crate::snap::Snap::save(&self.buckets, w);
        w.u64(self.sum);
    }
    fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(LatencyHist {
            buckets: crate::snap::Snap::load(r)?,
            sum: r.u64()?,
        })
    }
}

impl crate::snap::Snap for CycleBuckets {
    fn save(&self, w: &mut crate::snap::SnapWriter) {
        crate::snap::Snap::save(&self.counts, w);
    }
    fn load(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapshotError> {
        Ok(CycleBuckets {
            counts: crate::snap::Snap::load(r)?,
        })
    }
}

crate::snap_fields!(SmStats {
    issued,
    mem_issued,
    memory_stall_cycles,
    fence_stall_cycles,
    barrier_stall_cycles,
    structural_stall_cycles,
    idle_cycles,
    active_cycles,
    mem_latency,
    cycle_buckets,
});

crate::snap_fields!(CacheStats {
    accesses,
    hits,
    cold_misses,
    expired_misses,
    blocked_on_pending_write,
    renewals,
    stores,
    evictions,
    write_stall_cycles,
    eviction_stall_cycles,
    ts_rollovers,
    mshr_merges,
    replayed_stores,
    retries,
});

crate::snap_fields!(TransportStats {
    delivered,
    retransmits,
    timeouts,
    nacks,
    acks,
    dup_dropped,
    max_backoff_hits,
    flows_reset,
    bank_recoveries,
});

crate::snap_fields!(NocStats {
    packets,
    flits,
    control_packets,
    data_packets,
    total_packet_latency,
    queue_cycles,
});

crate::snap_fields!(DramStats {
    reads,
    writes,
    row_hits,
    row_misses,
    queue_full_events,
});

crate::snap_fields!(SimStats {
    cycles,
    accounted_cycles,
    sm,
    l1,
    l2,
    noc,
    transport,
    dram,
    per_sm,
    per_l1,
    per_l2,
    per_dram,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_merge_and_rates() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 6,
            cold_misses: 3,
            expired_misses: 1,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 10,
            hits: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert_eq!(a.hits, 16);
        assert_eq!(a.misses(), 4);
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(NocStats::default().avg_latency(), 0.0);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn stall_recording() {
        let mut s = SmStats::default();
        s.record_stall(StallKind::Memory);
        s.record_stall(StallKind::Memory);
        s.record_stall(StallKind::Fence);
        s.record_stall(StallKind::Barrier);
        s.record_stall(StallKind::Structural);
        assert_eq!(s.memory_stall_cycles, 2);
        assert_eq!(s.total_stall_cycles(), 5);
    }

    #[test]
    fn latency_hist_buckets_and_percentiles() {
        let mut h = LatencyHist::default();
        assert_eq!(h.percentile(0.5), 0.0);
        for _ in 0..90 {
            h.record(10); // bucket [8,16)
        }
        for _ in 0..10 {
            h.record(5000); // bucket [4096,8192)
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 16.0);
        assert_eq!(h.percentile(0.99), 8192.0);
        // Merge doubles the counts.
        let mut h2 = h;
        h2.merge(&h);
        assert_eq!(h2.count(), 200);
    }

    #[test]
    fn latency_hist_mean_is_exact() {
        let mut h = LatencyHist::default();
        assert_eq!(h.mean(), 0.0);
        for l in [7, 9, 14] {
            h.record(l);
        }
        assert!((h.mean() - 10.0).abs() < 1e-12);
        let mut doubled = h;
        doubled.merge(&h);
        assert!((doubled.mean() - 10.0).abs() < 1e-12, "merge keeps sums");
        // diff against an earlier snapshot recovers the interval mean.
        let snapshot = h;
        h.record(100);
        let delta = h.diff(&snapshot);
        assert_eq!(delta.count(), 1);
        assert!((delta.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn latency_hist_bucket0_edge_needs_samples_below_two() {
        let mut h = LatencyHist::default();
        h.record(50); // bucket [32, 64)
                      // No sample in [0,2): no percentile may report bucket 0's edge.
        assert_eq!(h.percentile(0.0), 64.0);
        assert_eq!(h.percentile(0.5), 64.0);
        h.record(1);
        assert_eq!(h.percentile(0.0), 2.0);
        assert_eq!(h.percentile(1.0), 64.0);
    }

    #[test]
    fn stats_diff_is_field_wise_and_saturating() {
        let mut later = SmStats {
            issued: 10,
            idle_cycles: 5,
            ..Default::default()
        };
        later.record_stall(StallKind::Memory);
        let earlier = SmStats {
            issued: 4,
            idle_cycles: 7, // larger than `later`: diff saturates to 0
            ..Default::default()
        };
        let d = later.diff(&earlier);
        assert_eq!(d.issued, 6);
        assert_eq!(d.idle_cycles, 0);
        assert_eq!(d.memory_stall_cycles, 1);

        let a = CacheStats {
            accesses: 9,
            hits: 6,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 4,
            hits: 1,
            ..Default::default()
        };
        assert_eq!(a.diff(&b).accesses, 5);
        assert_eq!(a.diff(&b).hits, 5);

        let sim_a = SimStats {
            cycles: Cycle(100),
            per_sm: vec![SmStats {
                issued: 8,
                ..Default::default()
            }],
            ..Default::default()
        };
        let sim_b = SimStats {
            cycles: Cycle(60),
            per_sm: vec![SmStats {
                issued: 3,
                ..Default::default()
            }],
            ..Default::default()
        };
        let d = sim_a.diff(&sim_b);
        assert_eq!(d.cycles.0, 40);
        assert_eq!(d.per_sm[0].issued, 5);
    }

    #[test]
    fn transport_stats_merge_and_diff() {
        let mut a = TransportStats {
            delivered: 10,
            retransmits: 3,
            timeouts: 2,
            nacks: 1,
            acks: 9,
            dup_dropped: 4,
            max_backoff_hits: 1,
            flows_reset: 2,
            bank_recoveries: 1,
        };
        let snapshot = a;
        a.merge(&snapshot);
        assert_eq!(a.delivered, 20);
        assert_eq!(a.retransmits, 6);
        assert_eq!(a.bank_recoveries, 2);
        let d = a.diff(&snapshot);
        assert_eq!(d, snapshot, "diff recovers the interval");
        // Saturating on reversed order.
        assert_eq!(snapshot.diff(&a).delivered, 0);
    }

    #[test]
    fn latency_hist_extremes() {
        let mut h = LatencyHist::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert!(h.percentile(1.0) >= h.percentile(0.01));
    }

    #[test]
    fn cycle_buckets_record_merge_diff() {
        let mut b = CycleBuckets::default();
        for r in CycleReason::ALL {
            b.record(r);
        }
        b.record(CycleReason::Issue);
        assert_eq!(b.get(CycleReason::Issue), 2);
        assert_eq!(b.sum(), 8);
        let snapshot = b;
        b.merge(&snapshot);
        assert_eq!(b.sum(), 16);
        let d = b.diff(&snapshot);
        assert_eq!(d, snapshot, "diff recovers the interval");
        assert_eq!(snapshot.diff(&b).sum(), 0, "diff saturates");
        // Names are distinct and stable (they appear in output formats).
        let names: std::collections::BTreeSet<_> =
            CycleReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), CycleReason::ALL.len());
    }

    #[test]
    fn latency_hist_exposes_buckets() {
        let mut h = LatencyHist::default();
        h.record(3); // bucket 1: [2, 4)
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.sum(), 3);
        assert_eq!(LatencyHist::bucket_upper_edge(0), 2);
        assert_eq!(LatencyHist::bucket_upper_edge(3), 16);
    }

    #[test]
    fn noc_avg_latency() {
        let n = NocStats {
            packets: 4,
            total_packet_latency: 40,
            ..Default::default()
        };
        assert!((n.avg_latency() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sim_ipc() {
        let s = SimStats {
            cycles: Cycle(100),
            sm: SmStats {
                issued: 250,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }
}
