//! Data versions: the functional payload the simulator tracks per block.
//!
//! The simulator does not model byte-accurate data. Instead every store
//! commits a fresh, globally unique [`Version`]; loads return the version
//! they observed. This is exactly what the coherence checker needs to
//! decide whether the values returned by loads are consistent with the
//! timestamp order (Section III-C: "the returned values are consistent
//! with the assignments").

use std::fmt;

/// A globally unique identifier for one committed store's data.
///
/// `Version::ZERO` denotes the initial contents of memory before any store.
///
/// # Examples
///
/// ```
/// use gtsc_types::Version;
/// let mut next = Version::ZERO;
/// let v1 = next.bump();
/// let v2 = next.bump();
/// assert!(v1 != v2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The pre-initialised contents of every memory block.
    pub const ZERO: Version = Version(0);

    /// Returns the next fresh version and advances `self` (a tiny
    /// allocator: keep one counter, call `bump` per committed store).
    #[must_use = "the returned version identifies the new store"]
    pub fn bump(&mut self) -> Version {
        self.0 += 1;
        Version(self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_unique_and_monotonic() {
        let mut alloc = Version::ZERO;
        let a = alloc.bump();
        let b = alloc.bump();
        let c = alloc.bump();
        assert!(Version::ZERO < a && a < b && b < c);
        assert_eq!(c, Version(3));
    }

    #[test]
    fn display() {
        assert_eq!(Version(7).to_string(), "v7");
    }
}
