//! Physical cycles and logical timestamps.
//!
//! The paper's central idea is the split between *physical time* (the
//! simulator/GPU clock, [`Cycle`]) and *logical time* ([`Timestamp`]), the
//! coordinate in which G-TSC orders memory operations. Temporal Coherence
//! orders operations in physical time; G-TSC orders them by `(Timestamp,
//! Cycle)` lexicographically (Section III-A of the paper).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A physical clock cycle of the simulated GPU.
///
/// # Examples
///
/// ```
/// use gtsc_types::Cycle;
/// let c = Cycle(10) + 5;
/// assert_eq!(c, Cycle(15));
/// assert_eq!(c - Cycle(10), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cyc{}", self.0)
    }
}

/// A logical timestamp, the unit of G-TSC's timestamp ordering.
///
/// Timestamps are *logical counters* (Section III-B): they are only
/// advanced by coherence transactions (lease extension and store
/// assignment), never by the clock. The hardware stores them in
/// `ts_bits`-wide fields (16 in the paper); this model keeps them as
/// `u64` and reproduces the wrap-around protocol explicitly via
/// [`Timestamp::overflows`].
///
/// # Examples
///
/// ```
/// use gtsc_types::{Lease, Timestamp};
/// let wts = Timestamp(5);
/// let rts = wts + Lease(10);
/// assert_eq!(rts, Timestamp(15));
/// assert!(wts < rts);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The initial timestamp value. All `warp_ts` and `mem_ts` counters
    /// start at 1 (Section III-B).
    pub const INIT: Timestamp = Timestamp(1);

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The immediately following timestamp.
    #[must_use]
    pub fn succ(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Whether this timestamp no longer fits in a `bits`-wide hardware
    /// counter, i.e. the rollover protocol of Section V-D must run.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    #[must_use]
    pub fn overflows(self, bits: u32) -> bool {
        assert!(bits > 0 && bits < 64, "timestamp width must be in 1..=63");
        self.0 >= (1u64 << bits)
    }
}

impl Add<Lease> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Lease) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// A lease length in logical-time units.
///
/// When a block is fetched or renewed, its read timestamp is extended to
/// `requester_ts + lease`, granting a logical read-only window. The paper
/// sweeps leases of 8–20 (Figure 14) and finds G-TSC insensitive in that
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lease(pub u64);

impl Default for Lease {
    /// The paper's default lease of 10 logical units (used throughout the
    /// worked example of Figure 9).
    fn default() -> Self {
        Lease(10)
    }
}

impl fmt::Display for Lease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let mut c = Cycle(3);
        c += 4;
        assert_eq!(c, Cycle(7));
        assert_eq!(c - Cycle(2), 5);
        assert_eq!(Cycle(9).to_string(), "cyc9");
    }

    #[test]
    fn timestamp_ordering_and_lease() {
        assert_eq!(Timestamp::INIT, Timestamp(1));
        assert_eq!(Timestamp(4).max(Timestamp(9)), Timestamp(9));
        assert_eq!(Timestamp(9).max(Timestamp(4)), Timestamp(9));
        assert_eq!(Timestamp(4).succ(), Timestamp(5));
        assert_eq!(Timestamp(4) + Lease(6), Timestamp(10));
    }

    #[test]
    fn overflow_detection() {
        assert!(!Timestamp(65_535).overflows(16));
        assert!(Timestamp(65_536).overflows(16));
        assert!(Timestamp(70_000).overflows(16));
        assert!(!Timestamp(70_000).overflows(32));
    }

    #[test]
    #[should_panic(expected = "timestamp width")]
    fn overflow_rejects_zero_width() {
        let _ = Timestamp(1).overflows(0);
    }

    #[test]
    fn default_lease_matches_paper_example() {
        assert_eq!(Lease::default(), Lease(10));
    }
}
