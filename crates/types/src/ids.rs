//! Identifiers for hardware and software entities in the simulated GPU.

use std::fmt;

/// Index of a Streaming Multiprocessor (SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmId(pub u16);

/// Index of a warp *within* one SM (0..warps_per_sm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub u16);

/// Index of a SIMT lane within a warp (0..32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneId(pub u8);

/// Index of an L2 cache bank / memory partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u16);

/// Index of a Cooperative Thread Array (thread block) within a kernel grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtaId(pub u32);

/// Index of a kernel launch within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelId(pub u32);

/// A warp identified globally across the whole GPU.
///
/// # Examples
///
/// ```
/// use gtsc_types::{GlobalWarpId, SmId, WarpId};
/// let w = GlobalWarpId { sm: SmId(3), warp: WarpId(7) };
/// assert_eq!(w.flat(48), 3 * 48 + 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalWarpId {
    /// Owning SM.
    pub sm: SmId,
    /// Warp slot within the SM.
    pub warp: WarpId,
}

impl GlobalWarpId {
    /// Flattens to a dense index given the number of warp slots per SM.
    #[must_use]
    pub fn flat(self, warps_per_sm: usize) -> usize {
        self.sm.0 as usize * warps_per_sm + self.warp.0 as usize
    }
}

/// Identity of one *sampled* memory access, carried end-to-end inside
/// protocol messages so the latency observatory (DESIGN.md §15) can tie
/// together every hop a request takes. `SpanId::NONE` (the zero value,
/// also the `Default`) marks the unsampled fast path: components test
/// `is_none()` and skip all span work.
///
/// The id packs the issuing SM in the top 16 bits and that SM's access
/// ordinal in the low 48, so ids are unique per run and deterministic
/// per seed without any cross-SM coordination.
///
/// # Examples
///
/// ```
/// use gtsc_types::{SmId, SpanId};
/// assert!(SpanId::NONE.is_none());
/// let s = SpanId::new(SmId(3), 42);
/// assert!(!s.is_none());
/// assert_eq!(s.sm(), SmId(3));
/// assert_eq!(s.to_string(), "span3.42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "not sampled" sentinel carried by the unsampled fast path.
    pub const NONE: SpanId = SpanId(0);

    /// Builds the id for SM `sm`'s `ordinal`-th access. `ordinal` must
    /// be nonzero (access counters in this codebase are pre-incremented)
    /// so the packed value can never collide with [`SpanId::NONE`].
    #[must_use]
    pub fn new(sm: SmId, ordinal: u64) -> SpanId {
        SpanId((sm.0 as u64) << 48 | (ordinal & ((1 << 48) - 1)))
    }

    /// True for the unsampled sentinel.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The SM that issued the sampled access.
    #[must_use]
    pub fn sm(self) -> SmId {
        SmId((self.0 >> 48) as u16)
    }

    /// The issuing SM's access ordinal.
    #[must_use]
    pub fn ordinal(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "span-none")
        } else {
            write!(f, "span{}.{}", self.sm().0, self.ordinal())
        }
    }
}

macro_rules! impl_display {
    ($($ty:ident => $prefix:literal),* $(,)?) => {
        $(impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        })*
    };
}

impl_display!(SmId => "sm", WarpId => "w", LaneId => "lane", BankId => "bank", CtaId => "cta", KernelId => "k");

impl fmt::Display for GlobalWarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.sm, self.warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_dense() {
        let a = GlobalWarpId {
            sm: SmId(0),
            warp: WarpId(47),
        };
        let b = GlobalWarpId {
            sm: SmId(1),
            warp: WarpId(0),
        };
        assert_eq!(a.flat(48) + 1, b.flat(48));
    }

    #[test]
    fn displays_are_compact() {
        assert_eq!(SmId(2).to_string(), "sm2");
        assert_eq!(
            GlobalWarpId {
                sm: SmId(2),
                warp: WarpId(5)
            }
            .to_string(),
            "sm2.w5"
        );
        assert_eq!(BankId(1).to_string(), "bank1");
        assert_eq!(CtaId(9).to_string(), "cta9");
        assert_eq!(KernelId(0).to_string(), "k0");
        assert_eq!(LaneId(31).to_string(), "lane31");
    }
}
