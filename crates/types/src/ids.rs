//! Identifiers for hardware and software entities in the simulated GPU.

use std::fmt;

/// Index of a Streaming Multiprocessor (SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmId(pub u16);

/// Index of a warp *within* one SM (0..warps_per_sm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub u16);

/// Index of a SIMT lane within a warp (0..32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneId(pub u8);

/// Index of an L2 cache bank / memory partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u16);

/// Index of a Cooperative Thread Array (thread block) within a kernel grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtaId(pub u32);

/// Index of a kernel launch within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelId(pub u32);

/// A warp identified globally across the whole GPU.
///
/// # Examples
///
/// ```
/// use gtsc_types::{GlobalWarpId, SmId, WarpId};
/// let w = GlobalWarpId { sm: SmId(3), warp: WarpId(7) };
/// assert_eq!(w.flat(48), 3 * 48 + 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalWarpId {
    /// Owning SM.
    pub sm: SmId,
    /// Warp slot within the SM.
    pub warp: WarpId,
}

impl GlobalWarpId {
    /// Flattens to a dense index given the number of warp slots per SM.
    #[must_use]
    pub fn flat(self, warps_per_sm: usize) -> usize {
        self.sm.0 as usize * warps_per_sm + self.warp.0 as usize
    }
}

macro_rules! impl_display {
    ($($ty:ident => $prefix:literal),* $(,)?) => {
        $(impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        })*
    };
}

impl_display!(SmId => "sm", WarpId => "w", LaneId => "lane", BankId => "bank", CtaId => "cta", KernelId => "k");

impl fmt::Display for GlobalWarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.sm, self.warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_dense() {
        let a = GlobalWarpId {
            sm: SmId(0),
            warp: WarpId(47),
        };
        let b = GlobalWarpId {
            sm: SmId(1),
            warp: WarpId(0),
        };
        assert_eq!(a.flat(48) + 1, b.flat(48));
    }

    #[test]
    fn displays_are_compact() {
        assert_eq!(SmId(2).to_string(), "sm2");
        assert_eq!(
            GlobalWarpId {
                sm: SmId(2),
                warp: WarpId(5)
            }
            .to_string(),
            "sm2.w5"
        );
        assert_eq!(BankId(1).to_string(), "bank1");
        assert_eq!(CtaId(9).to_string(), "cta9");
        assert_eq!(KernelId(0).to_string(), "k0");
        assert_eq!(LaneId(31).to_string(), "lane31");
    }
}
