//! Litmus-test demo: runs the classic message-passing shape on every
//! protocol and shows which ones preserve the publication idiom — and
//! how the non-coherent baseline breaks it.
//!
//! Run: `cargo run --release --example litmus`

use gtsc::sim::GpuSim;
use gtsc::types::{ConsistencyModel, GpuConfig, ProtocolKind, Version};
use gtsc::workloads::micro;

fn main() {
    println!("Message passing: CTA0 stores DATA, fences, stores FLAG;");
    println!("CTA1 (another SM) loads FLAG, fences, loads DATA.");
    println!("Forbidden outcome: seeing the new FLAG but the old DATA.\n");

    for (p, m) in [
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
        (ProtocolKind::L1NoCoherence, ConsistencyModel::Rc),
    ] {
        let cfg = GpuConfig::test_small().with_protocol(p).with_consistency(m);
        let label = cfg.label();
        let kernel = micro::message_passing(6);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");

        // Reconstruct the outcome from the checker's observations.
        let geom = gtsc::types::CacheGeometry::new(1024, 2, 128);
        let flag_block = geom.block_of(micro::FLAG);
        let data_block = geom.block_of(micro::DATA);
        let flags = sim.checker().load_observations(flag_block);
        let datas = sim.checker().load_observations(data_block);
        let mut forbidden = 0;
        for (f, d) in flags.iter().zip(datas.iter()) {
            if f.version != Version::ZERO && d.version == Version::ZERO {
                forbidden += 1;
            }
        }
        println!(
            "{label:<12} reader iterations: {:>2}, forbidden outcomes: {forbidden}, \
             checker violations: {}",
            flags.len(),
            report.violations.len()
        );
    }
    println!("\n(The incoherent L1 baseline may cache DATA stale forever — exactly why");
    println!("the paper's group-A benchmarks cannot run on it.)");
}
