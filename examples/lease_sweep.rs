//! Lease-sensitivity demo: the motivating contrast of Section II-D3.
//!
//! Temporal Coherence couples leases to *physical* time, so its
//! performance swings with the lease choice — and the best lease differs
//! per benchmark. G-TSC's lease is *logical*, and its behaviour is
//! invariant to the lease value (Figure 14).
//!
//! Run: `cargo run --release --example lease_sweep`

use gtsc::sim::GpuSim;
use gtsc::types::{ConsistencyModel, GpuConfig, Lease, ProtocolKind};
use gtsc::workloads::{Benchmark, Scale};

fn main() {
    let leases = [25u64, 100, 400, 800, 1600];
    println!("TC-Weak (physical leases) — cycles per lease choice:");
    println!(
        "{:<8}{}",
        "bench",
        leases.map(|l| format!("{l:>10}")).join("")
    );
    for b in [Benchmark::Stn, Benchmark::Cc, Benchmark::Bh] {
        print!("{:<8}", b.name());
        for lease in leases {
            let mut cfg = GpuConfig::paper_default()
                .with_protocol(ProtocolKind::TcWeak)
                .with_consistency(ConsistencyModel::Rc);
            cfg.tc_lease_cycles = lease;
            print!("{:>10}", run(b, cfg));
        }
        println!();
    }

    println!("\nG-TSC (logical leases) — cycles per lease choice:");
    let glease = [8u64, 10, 16, 20, 64];
    println!(
        "{:<8}{}",
        "bench",
        glease.map(|l| format!("{l:>10}")).join("")
    );
    for b in [Benchmark::Stn, Benchmark::Cc, Benchmark::Bh] {
        print!("{:<8}", b.name());
        for lease in glease {
            let cfg = GpuConfig::paper_default()
                .with_protocol(ProtocolKind::Gtsc)
                .with_consistency(ConsistencyModel::Rc)
                .with_lease(Lease(lease));
            print!("{:>10}", run(b, cfg));
        }
        println!();
    }
    println!("\nTC needs per-benchmark lease tuning; G-TSC's rows are flat (Figure 14).");
}

fn run(b: Benchmark, cfg: GpuConfig) -> u64 {
    let kernel = b.build(Scale::Small);
    let mut sim = GpuSim::new(cfg);
    sim.run_kernel(kernel.as_ref())
        .expect("completes")
        .stats
        .cycles
        .0
}
