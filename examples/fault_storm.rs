//! Robustness harness demo: run G-TSC through a seeded chaos storm and
//! show that coherence holds; then starve the memory system and show the
//! forward-progress watchdog naming the stuck warps.
//!
//! Run: `cargo run --release --example fault_storm [seed]`

use gtsc::gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc::sim::{GpuSim, SimError};
use gtsc::types::{Addr, FaultConfig, GpuConfig, ProtocolKind};
use gtsc::workloads::micro;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1234u64);

    // 1. A chaos storm: NoC jitter, cross-flow reordering, duplicate
    //    delivery, DRAM jitter — all derived from one seed.
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_faults(FaultConfig::chaos(seed));
    let mut gpu = GpuSim::new(cfg);
    let report = gpu
        .run_kernel(&micro::message_passing(3))
        .expect("faults delay but never drop, so the kernel completes");
    let f = gpu.fault_stats().expect("chaos plan is active");
    println!("== chaos storm, seed {seed} ==");
    println!(
        "faults injected: {} jittered (+{} cycles), {} reordered, {} duplicated",
        f.jittered, f.extra_cycles, f.reordered, f.duplicated
    );
    println!(
        "coherence      : {} violations in {} checked events ({} cycles)",
        report.violations.len(),
        gpu.checker().n_events(),
        report.stats.cycles.0
    );
    assert!(report.violations.is_empty());

    // 2. Starve the memory system (absurd DRAM latencies) and watch the
    //    watchdog convert the hang into a structured diagnosis instead of
    //    spinning to the raw cycle limit.
    let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
    cfg.dram.row_hit = 50_000_000;
    cfg.dram.row_miss = 50_000_000;
    cfg.watchdog_cycles = 2_000;
    let kernel = VecKernel::new(
        "one-load",
        1,
        vec![vec![WarpProgram(vec![WarpOp::load_coalesced(Addr(0), 32)])]],
    );
    let mut gpu = GpuSim::new(cfg);
    match gpu.run_kernel(&kernel) {
        Err(SimError::Stalled { at, diagnosis }) => {
            println!("\n== watchdog demo: starved DRAM ==");
            println!("stalled at cycle {}:\n{diagnosis}", at.0);
        }
        other => panic!("expected a stall diagnosis, got {other:?}"),
    }
}
