//! Replaying an externally captured memory trace through the simulator
//! under every protocol — the adoption path for studying real kernels:
//! instrument your CUDA app, dump one line per warp instruction, replay.
//!
//! Run: `cargo run --release --example trace_replay [-- <trace-file>]`

use gtsc::sim::GpuSim;
use gtsc::types::{ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc::workloads::trace::parse_trace;

/// A miniature producer/consumer trace used when no file is given.
const BUILTIN: &str = "\
# Two CTAs hand a tile through shared memory blocks 0x0-0x300.
kernel handoff ctas=2 warps_per_cta=2
cta 0 warp 0
  st 0x000
  st 0x080
  fence.rel
  at 0x300          # publish: atomic flag bump
cta 0 warp 1
  st 0x100
  st 0x180
  fence.rel
  at 0x300
cta 1 warp 0
  ld 0x300
  fence.acq
  ld 0x000 0x080
  compute 20
  ld 0x100 0x180
cta 1 warp 1
  ld 0x300
  fence.acq
  ld 0x180 0x100
  compute 15
  ld 0x080 0x000
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}; using the built-in trace");
            BUILTIN.to_owned()
        }),
        None => BUILTIN.to_owned(),
    };
    let kernel = match parse_trace(&text) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("trace error: {e}");
            std::process::exit(1);
        }
    };
    println!("replaying traced kernel under each system:\n");
    println!(
        "{:<12}{:>10}{:>10}{:>12}{:>12}",
        "config", "cycles", "L1 hit%", "NoC flits", "violations"
    );
    for (p, m) in [
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
    ] {
        let cfg = GpuConfig::test_small().with_protocol(p).with_consistency(m);
        let label = cfg.label();
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        println!(
            "{label:<12}{:>10}{:>10.1}{:>12}{:>12}",
            report.stats.cycles.0,
            100.0 * report.stats.l1.hit_rate(),
            report.stats.noc.flits,
            report.violations.len()
        );
    }
}
