//! Head-to-head protocol comparison on one benchmark: a single row of
//! Figure 12, with the mechanism-level counters that explain it.
//!
//! Run: `cargo run --release --example protocol_comparison [-- BH|CC|...|SGM]`

use gtsc::sim::GpuSim;
use gtsc::types::{ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc::workloads::{Benchmark, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "STN".to_owned());
    let bench = Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| {
            panic!(
                "unknown benchmark {which}; use one of BH CC DLP VPR STN BFS CCP GE HS KM BP SGM"
            )
        });
    println!(
        "benchmark {} ({}requires coherence)\n",
        bench.name(),
        if bench.requires_coherence() {
            ""
        } else {
            "no — "
        }
    );
    println!(
        "{:<12}{:>10}{:>8}{:>10}{:>10}{:>10}{:>12}{:>12}{:>8}{:>8}",
        "config",
        "cycles",
        "L1 hit%",
        "renewals",
        "expired",
        "wr-stall",
        "NoC flits",
        "mem stalls",
        "p50 lat",
        "p99 lat"
    );
    let base = run(bench, ProtocolKind::NoL1, ConsistencyModel::Rc);
    for (p, m) in [
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
    ] {
        let s = run(bench, p, m);
        println!(
            "{:<12}{:>10}{:>8.1}{:>10}{:>10}{:>10}{:>12}{:>12}{:>8.0}{:>8.0}",
            GpuConfig::paper_default()
                .with_protocol(p)
                .with_consistency(m)
                .label(),
            s.cycles.0,
            100.0 * s.l1.hit_rate(),
            s.l1.renewals,
            s.l1.expired_misses,
            s.l2.write_stall_cycles,
            s.noc.flits,
            s.sm.memory_stall_cycles,
            s.sm.mem_latency.percentile(0.5),
            s.sm.mem_latency.percentile(0.99),
        );
    }
    println!("\nnormalize cycles against the first row (BL) to recover the Figure 12 bar;");
    println!("BL took {} cycles here.", base.cycles.0);
}

fn run(b: Benchmark, p: ProtocolKind, m: ConsistencyModel) -> gtsc::types::SimStats {
    let cfg = GpuConfig::paper_default()
        .with_protocol(p)
        .with_consistency(m);
    let kernel = b.build(Scale::Small);
    let mut sim = GpuSim::new(cfg);
    let report = sim.run_kernel(kernel.as_ref()).expect("completes");
    assert!(report.violations.is_empty() || p == ProtocolKind::L1NoCoherence);
    report.stats
}
