//! Quickstart: assemble the paper's GPU, run a benchmark under G-TSC,
//! and print the headline statistics.
//!
//! Run: `cargo run --release --example quickstart`

use gtsc::energy::{EnergyModel, EnergyParams};
use gtsc::sim::GpuSim;
use gtsc::types::{ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc::workloads::{Benchmark, Scale};

fn main() {
    // The evaluation platform of Section VI-A: 16 SMs, 48 warps each,
    // 16 KiB L1s, 8 x 128 KiB L2 banks — running G-TSC under release
    // consistency.
    let cfg = GpuConfig::paper_default()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Rc);
    println!("configuration: {}", cfg.label());

    // BFS: one of the paper's benchmarks that *requires* coherence.
    let kernel = Benchmark::Bfs.build(Scale::Small);
    let mut gpu = GpuSim::new(cfg);
    let report = gpu.run_kernel(kernel.as_ref()).expect("kernel completes");

    let s = &report.stats;
    println!("execution time : {} cycles", s.cycles.0);
    println!("IPC            : {:.2}", s.ipc());
    println!(
        "L1             : {:.1}% hits, {} cold misses, {} lease-expiry misses, {} renewals",
        100.0 * s.l1.hit_rate(),
        s.l1.cold_misses,
        s.l1.expired_misses,
        s.l1.renewals,
    );
    println!(
        "NoC            : {} flits, mean packet latency {:.0} cycles",
        s.noc.flits,
        s.noc.avg_latency()
    );
    println!(
        "DRAM           : {} reads, {} writes",
        s.dram.reads, s.dram.writes
    );

    let energy = EnergyModel::new(EnergyParams::default()).estimate(s);
    println!(
        "energy         : {:.1} µJ total, {:.2} µJ in L1",
        energy.total_nj() / 1e3,
        energy.l1_nj / 1e3
    );

    // The built-in checker verified every load against timestamp order.
    assert!(report.violations.is_empty());
    println!(
        "coherence      : OK ({} accesses checked)",
        gpu.checker().n_events()
    );
}
