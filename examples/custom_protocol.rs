//! Plugging a *custom* coherence protocol into the simulator: a toy
//! "epoch-flush" L1 that caches blocks without leases and simply flushes
//! itself every N cycles — a software-style coherence scheme. The point
//! is the mechanism: implement `L1Controller`, hand it to `SimBuilder`,
//! and the unchanged GPU/NoC/DRAM substrate plus the coherence checker do
//! the rest.
//!
//! Run: `cargo run --release --example custom_protocol`

use std::collections::{HashMap, VecDeque};

use gtsc::mem::{Mshr, MshrAlloc, TagArray};
use gtsc::protocol::msg::{L1ToL2, L2ToL1, LeaseInfo, ReadReq, WriteReq};
use gtsc::protocol::{AccessId, AccessKind, Completion, L1Controller, L1Outcome, MemAccess};
use gtsc::sim::SimBuilder;
use gtsc::types::{
    BlockAddr, CacheStats, ConsistencyModel, Cycle, GpuConfig, ProtocolKind, Timestamp, Version,
    WarpId,
};
use gtsc::workloads::{Benchmark, Scale};

/// A non-coherent L1 that self-flushes every `period` cycles: the crudest
/// "eventual coherence". (It is *not* coherent between flushes — expect
/// the checker to object on sharing workloads; that contrast is the demo.)
struct EpochFlushL1 {
    sm_index: usize,
    period: u64,
    last_flush: Cycle,
    tags: TagArray<Version>,
    mshr: Mshr<(AccessId, WarpId)>,
    store_acks: HashMap<BlockAddr, VecDeque<(AccessId, WarpId, AccessKind, Version)>>,
    out: VecDeque<L1ToL2>,
    version_ctr: u64,
    stats: CacheStats,
}

impl EpochFlushL1 {
    fn new(cfg: &GpuConfig, sm_index: usize, period: u64) -> Self {
        EpochFlushL1 {
            sm_index,
            period,
            last_flush: Cycle(0),
            tags: TagArray::new(cfg.l1),
            mshr: Mshr::new(cfg.l1_mshr_entries, cfg.l1_mshr_merges),
            store_acks: HashMap::new(),
            out: VecDeque::new(),
            version_ctr: 0,
            stats: CacheStats::default(),
        }
    }
}

impl L1Controller for EpochFlushL1 {
    fn access(&mut self, acc: MemAccess, _now: Cycle) -> L1Outcome {
        self.stats.accesses += 1;
        match acc.kind {
            AccessKind::Load => {
                if let Some(line) = self.tags.probe(acc.block) {
                    self.stats.hits += 1;
                    return L1Outcome::Hit(Completion {
                        id: acc.id,
                        warp: acc.warp,
                        kind: AccessKind::Load,
                        block: acc.block,
                        version: line.meta,
                        ts: None,
                        epoch: 0,
                        prev: None,
                    });
                }
                self.stats.cold_misses += 1;
                match self.mshr.register(acc.block, (acc.id, acc.warp)) {
                    MshrAlloc::Full => L1Outcome::Reject,
                    MshrAlloc::AllocatedNew => {
                        self.out.push_back(L1ToL2::Read(ReadReq {
                            block: acc.block,
                            wts: Timestamp(0),
                            warp_ts: Timestamp(0),
                            epoch: 0,
                            span: acc.span,
                        }));
                        L1Outcome::Queued
                    }
                    MshrAlloc::Merged => L1Outcome::Queued,
                }
            }
            AccessKind::Store | AccessKind::Atomic => {
                self.stats.stores += 1;
                self.version_ctr += 1;
                let version = Version(
                    ((self.sm_index as u64 + 1) << 40)
                        | ((acc.warp.0 as u64) << 28)
                        | self.version_ctr,
                );
                if let Some(line) = self.tags.probe_mut(acc.block) {
                    line.meta = version;
                }
                let req = WriteReq {
                    block: acc.block,
                    warp_ts: Timestamp(0),
                    version,
                    epoch: 0,
                    span: acc.span,
                };
                self.out.push_back(if acc.kind == AccessKind::Atomic {
                    L1ToL2::Atomic(req)
                } else {
                    L1ToL2::Write(req)
                });
                self.store_acks
                    .entry(acc.block)
                    .or_default()
                    .push_back((acc.id, acc.warp, acc.kind, version));
                L1Outcome::Queued
            }
        }
    }

    fn on_response(&mut self, msg: L2ToL1, _now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        match msg {
            L2ToL1::Fill(f) => {
                debug_assert_eq!(f.lease, LeaseInfo::None);
                self.tags.fill(f.block, f.version);
                for (id, warp) in self.mshr.take(f.block) {
                    done.push(Completion {
                        id,
                        warp,
                        kind: AccessKind::Load,
                        block: f.block,
                        version: f.version,
                        ts: None,
                        epoch: 0,
                        prev: None,
                    });
                }
            }
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                let prev = if let L2ToL1::AtomicAck { prev, .. } = msg {
                    Some(prev)
                } else {
                    None
                };
                if let Some(q) = self.store_acks.get_mut(&a.block) {
                    if let Some(pos) = q.iter().position(|(_, _, _, v)| *v == a.version) {
                        let (id, warp, kind, version) = q.remove(pos).expect("pos valid");
                        if q.is_empty() {
                            self.store_acks.remove(&a.block);
                        }
                        done.push(Completion {
                            id,
                            warp,
                            kind,
                            block: a.block,
                            version,
                            ts: None,
                            epoch: 0,
                            prev,
                        });
                    }
                }
            }
            L2ToL1::Renew { .. } | L2ToL1::Invalidate { .. } => {}
        }
        done
    }

    fn take_request(&mut self) -> Option<L1ToL2> {
        self.out.pop_front()
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        // The whole point: periodic self-flush.
        if now - self.last_flush >= self.period {
            self.tags.flush();
            self.last_flush = now;
        }
        Vec::new()
    }

    fn flush(&mut self) {
        self.tags.flush();
    }

    fn is_idle(&self) -> bool {
        self.mshr.is_empty() && self.store_acks.is_empty() && self.out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

fn main() {
    // The custom L1 rides on the plain (no-lease) L2 of the no-L1
    // baseline config.
    let base = GpuConfig::paper_default()
        .with_protocol(ProtocolKind::NoL1)
        .with_consistency(ConsistencyModel::Rc);

    println!("epoch-flush L1 (a software-coherence strawman) vs the built-in systems on HS:\n");
    for period in [100u64, 1000, 10_000] {
        let mut sim = SimBuilder::new(base.clone())
            .with_l1(move |cfg, i| Box::new(EpochFlushL1::new(cfg, i, period)))
            .build();
        let kernel = Benchmark::Hs.build(Scale::Small);
        let report = sim.run_kernel(kernel.as_ref()).expect("completes");
        println!(
            "flush every {period:>6} cycles: {:>6} cycles, L1 hit {:>5.1}%, checker violations {}",
            report.stats.cycles.0,
            100.0 * report.stats.l1.hit_rate(),
            report.violations.len()
        );
    }
    let mut bl = SimBuilder::new(base).build();
    let kernel = Benchmark::Hs.build(Scale::Small);
    let report = bl.run_kernel(kernel.as_ref()).expect("completes");
    println!(
        "no-L1 baseline            : {:>6} cycles",
        report.stats.cycles.0
    );

    // On a *publication* pattern the strawman serves stale data between
    // flushes: the reader observes the writer's new FLAG but the old DATA
    // from its own cache — the forbidden message-passing outcome.
    println!("\nmessage-passing under epoch-flush (flush period 5000):");
    let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::NoL1);
    let mut sim = SimBuilder::new(cfg)
        .with_l1(|cfg, i| Box::new(EpochFlushL1::new(cfg, i, 5_000)))
        .build();
    let kernel = stale_mp_kernel();
    sim.run_kernel(&kernel).expect("completes");
    let geom = gtsc::types::CacheGeometry::new(1024, 2, 128);
    let flags = sim
        .checker()
        .load_observations(geom.block_of(gtsc::types::Addr(128)));
    let datas = sim
        .checker()
        .load_observations(geom.block_of(gtsc::types::Addr(0)));
    let forbidden = flags
        .iter()
        .zip(datas.iter())
        .filter(|(f, d)| f.version != Version::ZERO && d.version == Version::ZERO)
        .count();
    println!(
        "forbidden outcomes observed: {forbidden} (new FLAG with stale DATA) — \
         G-TSC produces 0 on the same kernel by construction"
    );
}

/// Writer publishes DATA then FLAG; the reader caches DATA early, later
/// sees the FLAG, and re-reads DATA — which an incoherent L1 serves stale.
fn stale_mp_kernel() -> gtsc::gpu::VecKernel {
    use gtsc::gpu::{VecKernel, WarpOp, WarpProgram};
    use gtsc::types::Addr;
    let writer = WarpProgram(vec![
        WarpOp::Compute(40),
        WarpOp::store_coalesced(Addr(0), 32),
        WarpOp::Fence,
        WarpOp::store_coalesced(Addr(128), 32),
    ]);
    let reader = WarpProgram(vec![
        WarpOp::load_coalesced(Addr(0), 32),
        WarpOp::Compute(400),
        WarpOp::load_coalesced(Addr(128), 32),
        WarpOp::Fence,
        WarpOp::load_coalesced(Addr(0), 32),
    ]);
    VecKernel::new("stale-mp", 1, vec![vec![writer], vec![reader]])
}
