//! # G-TSC: Timestamp Based Coherence for GPUs — a reproduction
//!
//! This crate is the umbrella over a workspace that reimplements, from
//! scratch, the system described in *"G-TSC: Timestamp Based Coherence
//! for GPUs"* (Tabbakh, Qian, Annavaram — HPCA 2018): a GPU cache
//! coherence protocol that orders memory operations in **logical time**
//! instead of physical time, together with everything needed to evaluate
//! it — a cycle-level GPU simulator, the Temporal Coherence baselines,
//! SC/RC consistency models, workload generators for the paper's twelve
//! benchmarks, an energy model, and a harness that regenerates every
//! table and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use gtsc::sim::GpuSim;
//! use gtsc::types::{ConsistencyModel, GpuConfig, ProtocolKind};
//! use gtsc::workloads::{Benchmark, Scale};
//!
//! // Assemble the paper's 16-SM GPU running G-TSC under release
//! // consistency, and run the BFS benchmark on it.
//! let cfg = GpuConfig::paper_default()
//!     .with_protocol(ProtocolKind::Gtsc)
//!     .with_consistency(ConsistencyModel::Rc);
//! let mut gpu = GpuSim::new(cfg);
//! let kernel = Benchmark::Bfs.build(Scale::Tiny);
//! let report = gpu.run_kernel(kernel.as_ref())?;
//! assert!(report.violations.is_empty(), "G-TSC keeps the GPU coherent");
//! println!("BFS took {} cycles", report.stats.cycles.0);
//! # Ok::<(), gtsc::sim::SimError>(())
//! ```
//!
//! ## Workspace map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `gtsc-core` | **the paper's contribution**: G-TSC L1/L2 controllers and timestamp rules |
//! | [`baselines`] | `gtsc-baselines` | Temporal Coherence (strong/weak), no-L1, non-coherent L1 |
//! | [`protocol`] | `gtsc-protocol` | messages (Table I) and controller traits |
//! | [`gpu`] | `gtsc-gpu` | SMs, warps, coalescer, SC/RC issue rules |
//! | [`mem`] | `gtsc-mem` | tag arrays, MSHRs, DRAM timing |
//! | [`noc`] | `gtsc-noc` | crossbar interconnect with flit accounting |
//! | [`faults`] | `gtsc-faults` | seeded deterministic fault injection |
//! | [`fabric`] | `gtsc-fabric` | inter-GPU fabric: device L2s + home-node directory |
//! | [`sim`] | `gtsc-sim` | the assembled GPU + coherence checker |
//! | [`workloads`] | `gtsc-workloads` | the twelve benchmarks + litmus kernels |
//! | [`energy`] | `gtsc-energy` | GPUWattch-style event-energy model |
//! | [`types`] | `gtsc-types` | addresses, timestamps, configuration, statistics |
//!
//! See `DESIGN.md` for the system inventory and per-experiment index, and
//! `EXPERIMENTS.md` for measured-vs-paper results.

pub use gtsc_baselines as baselines;
pub use gtsc_core as core;
pub use gtsc_energy as energy;
pub use gtsc_fabric as fabric;
pub use gtsc_faults as faults;
pub use gtsc_gpu as gpu;
pub use gtsc_mem as mem;
pub use gtsc_noc as noc;
pub use gtsc_protocol as protocol;
pub use gtsc_sim as sim;
pub use gtsc_types as types;
pub use gtsc_workloads as workloads;
